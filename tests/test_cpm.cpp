#include "cpm/cpm.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "clique/parallel_cliques.h"
#include "common/thread_pool.h"
#include "cpm/reference_cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::make_graph;
using testing::overlapping_cliques;
using testing::random_graph;

std::vector<NodeSet> community_node_sets(const CommunitySet& set) {
  std::vector<NodeSet> out;
  for (const auto& c : set.communities) out.push_back(c.nodes);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Cpm, CompleteGraphOneCommunityPerK) {
  const CpmResult r = run_cpm(complete_graph(6));
  EXPECT_EQ(r.min_k, 2u);
  EXPECT_EQ(r.max_k, 6u);
  for (std::size_t k = 2; k <= 6; ++k) {
    ASSERT_EQ(r.at(k).count(), 1u) << "k " << k;
    EXPECT_EQ(r.at(k).communities[0].nodes, (NodeSet{0, 1, 2, 3, 4, 5}));
  }
}

TEST(Cpm, PallaExampleTwoFiveCliquesSharingThree) {
  // Two 5-cliques sharing 3 nodes: one community at k <= 4, two at k = 5.
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  EXPECT_EQ(r.max_k, 5u);
  EXPECT_EQ(r.at(4).count(), 1u);
  EXPECT_EQ(r.at(4).communities[0].size(), 7u);
  ASSERT_EQ(r.at(5).count(), 2u);
  EXPECT_EQ(r.at(5).communities[0].size(), 5u);
  EXPECT_EQ(r.at(5).communities[1].size(), 5u);
}

TEST(Cpm, SharingKMinusOneMergesAtK) {
  // Two 4-cliques sharing 3 nodes merge at k = 4.
  const Graph g = overlapping_cliques(4, 4, 3);
  const CpmResult r = run_cpm(g);
  EXPECT_EQ(r.at(4).count(), 1u);
  EXPECT_EQ(r.at(4).communities[0].size(), 5u);
}

TEST(Cpm, K2IsConnectedComponents) {
  const Graph g = make_graph(7, {{0, 1}, {1, 2}, {3, 4}});  // + isolated 5, 6
  const CpmResult r = run_cpm(g);
  ASSERT_TRUE(r.has_k(2));
  const auto sets = community_node_sets(r.at(2));
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (NodeSet{0, 1, 2}));
  EXPECT_EQ(sets[1], (NodeSet{3, 4}));
}

TEST(Cpm, TriangleChain) {
  // Triangles sharing single nodes stay separate at k = 3.
  // {0,1,2} - node 2 - {2,3,4}: share 1 node < k-1 = 2.
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  const CpmResult r = run_cpm(g);
  EXPECT_EQ(r.at(3).count(), 2u);
  EXPECT_EQ(r.at(2).count(), 1u);  // all one component
}

TEST(Cpm, IsolatedCliqueIsItsOwnCommunity) {
  GraphBuilder b;
  // K4 on {0..3} and a disjoint edge {4,5}.
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  b.add_edge(4, 5);
  const CpmResult r = run_cpm(b.build());
  EXPECT_EQ(r.at(2).count(), 2u);
  EXPECT_EQ(r.at(3).count(), 1u);
  EXPECT_EQ(r.at(4).count(), 1u);
  EXPECT_EQ(r.at(4).communities[0].nodes, (NodeSet{0, 1, 2, 3}));
}

TEST(Cpm, EmptyAndEdgelessGraphs) {
  const CpmResult r = run_cpm(Graph{});
  EXPECT_LT(r.max_k, r.min_k);
  EXPECT_EQ(r.total_communities(), 0u);

  GraphBuilder b;
  b.ensure_nodes(5);
  const CpmResult r2 = run_cpm(b.build());
  EXPECT_EQ(r2.total_communities(), 0u);
}

TEST(Cpm, MinKBelowTwoThrows) {
  CpmOptions options;
  options.min_k = 1;
  EXPECT_THROW(run_cpm(complete_graph(3), options), Error);
}

TEST(Cpm, MaxKClamped) {
  CpmOptions options;
  options.max_k = 100;
  const CpmResult r = run_cpm(complete_graph(4), options);
  EXPECT_EQ(r.max_k, 4u);

  options.max_k = 3;
  const CpmResult r2 = run_cpm(complete_graph(4), options);
  EXPECT_EQ(r2.max_k, 3u);
  EXPECT_TRUE(r2.has_k(3));
  EXPECT_FALSE(r2.has_k(4));
}

TEST(Cpm, MinKRestrictsRange) {
  CpmOptions options;
  options.min_k = 4;
  const CpmResult r = run_cpm(complete_graph(6), options);
  EXPECT_FALSE(r.has_k(3));
  EXPECT_TRUE(r.has_k(4));
  EXPECT_EQ(r.at(4).count(), 1u);
}

TEST(Cpm, CommunityOrderingCanonical) {
  // Larger communities get smaller ids.
  const Graph g = overlapping_cliques(6, 3, 0);
  const CpmResult r = run_cpm(g);
  const auto& threes = r.at(3).communities;
  ASSERT_EQ(threes.size(), 2u);
  EXPECT_GT(threes[0].size(), threes[1].size());
  EXPECT_EQ(threes[0].id, 0u);
  EXPECT_EQ(threes[1].id, 1u);
}

TEST(Cpm, CommunityOfCliqueMapping) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  for (std::size_t k = r.min_k; k <= r.max_k; ++k) {
    const CommunitySet& set = r.at(k);
    ASSERT_EQ(set.community_of_clique.size(), r.cliques.size());
    for (CliqueId c = 0; c < r.cliques.size(); ++c) {
      const CommunityId id = set.community_of_clique[c];
      if (r.cliques[c].size() >= k) {
        ASSERT_NE(id, CommunitySet::kNoCommunity);
        // The clique's nodes must be inside its community.
        const auto& nodes = set.communities[id].nodes;
        EXPECT_TRUE(std::includes(nodes.begin(), nodes.end(),
                                  r.cliques[c].begin(), r.cliques[c].end()));
      } else {
        EXPECT_EQ(id, CommunitySet::kNoCommunity);
      }
    }
  }
}

TEST(Cpm, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = random_graph(16, 0.35, seed);
    const CpmResult r = run_cpm(g);
    for (std::size_t k = 3; k <= std::max<std::size_t>(r.max_k, 3); ++k) {
      const auto expected = reference_k_clique_communities(g, k);
      std::vector<NodeSet> actual;
      if (r.has_k(k)) actual = community_node_sets(r.at(k));
      EXPECT_EQ(actual, expected) << "seed " << seed << " k " << k;
    }
  }
}

TEST(Cpm, ReferenceMatchesAtK2Too) {
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const Graph g = random_graph(14, 0.2, seed);
    const CpmResult r = run_cpm(g);
    if (!r.has_k(2)) continue;
    EXPECT_EQ(community_node_sets(r.at(2)),
              reference_k_clique_communities(g, 2));
  }
}

TEST(Cpm, RunOnPreEnumeratedCliques) {
  const Graph g = overlapping_cliques(5, 5, 3);
  ThreadPool pool(2);
  auto cliques = parallel_maximal_cliques(g, pool, 2);
  const CpmResult direct = run_cpm(g);
  const CpmResult via_cliques = run_cpm_on_cliques(g, std::move(cliques));
  ASSERT_EQ(direct.max_k, via_cliques.max_k);
  for (std::size_t k = direct.min_k; k <= direct.max_k; ++k) {
    EXPECT_EQ(community_node_sets(direct.at(k)),
              community_node_sets(via_cliques.at(k)));
  }
}

TEST(Cpm, RejectsMalformedCliques) {
  const Graph g = complete_graph(3);
  EXPECT_THROW(run_cpm_on_cliques(g, {{2, 1}}), Error);   // unsorted
  EXPECT_THROW(run_cpm_on_cliques(g, {{1}}), Error);      // too small
}

TEST(Cpm, UniqueCommunityKs) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  const auto unique = r.unique_community_ks();
  // k = 2, 3, 4 have one community; k = 5 has two.
  EXPECT_EQ(unique, (std::vector<std::size_t>{2, 3, 4}));
}

}  // namespace
}  // namespace kcc
