#include "graph/degree_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "synth/as_topology.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

TEST(DegreeDistribution, Histogram) {
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto histogram = degree_histogram(g);
  ASSERT_EQ(histogram.size(), 5u);
  EXPECT_EQ(histogram[1], 4u);
  EXPECT_EQ(histogram[4], 1u);
  EXPECT_EQ(histogram[0], 0u);
}

TEST(DegreeDistribution, HistogramEmptyGraph) {
  const auto histogram = degree_histogram(Graph{});
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram[0], 0u);
}

TEST(DegreeDistribution, Ccdf) {
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto ccdf = degree_ccdf(g);
  EXPECT_DOUBLE_EQ(ccdf[0], 1.0);
  EXPECT_DOUBLE_EQ(ccdf[1], 1.0);  // everyone has degree >= 1
  EXPECT_DOUBLE_EQ(ccdf[2], 0.2);  // only the hub
  EXPECT_DOUBLE_EQ(ccdf[4], 0.2);
  // Monotone non-increasing.
  for (std::size_t d = 1; d < ccdf.size(); ++d) {
    EXPECT_LE(ccdf[d], ccdf[d - 1]);
  }
}

TEST(DegreeDistribution, PowerLawFitEstimator) {
  // Closed form on a regular graph: every degree is 5, x_min = 2, so
  // alpha = 1 + 1 / ln(5 / 1.5).
  const PowerLawFit fit = fit_power_law(complete_graph(6), 2);
  EXPECT_EQ(fit.tail_size, 6u);
  EXPECT_NEAR(fit.alpha, 1.0 + 1.0 / std::log(5.0 / 1.5), 1e-12);

  EXPECT_THROW(fit_power_law(Graph{}, 2), Error);          // no tail
  EXPECT_THROW(fit_power_law(complete_graph(6), 0), Error);  // bad x_min
  EXPECT_THROW(fit_power_law(complete_graph(6), 6), Error);  // empty tail
}

TEST(DegreeDistribution, FitRecoversHeavyTailOfEcosystem) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  const PowerLawFit fit = fit_power_law(eco.topology.graph, 3);
  EXPECT_GT(fit.tail_size, 50u);
  // Internet AS degree exponents are reported around 2.1; the generator
  // lands in the plausible heavy-tail window.
  EXPECT_GT(fit.alpha, 1.5);
  EXPECT_LT(fit.alpha, 3.5);
}

TEST(DegreeDistribution, HigherXminUsesSmallerTail) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  const PowerLawFit low = fit_power_law(eco.topology.graph, 2);
  const PowerLawFit high = fit_power_law(eco.topology.graph, 10);
  EXPECT_GT(low.tail_size, high.tail_size);
}

}  // namespace
}  // namespace kcc
