#include "graph/graph_algorithms.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::make_graph;

TEST(ConnectedComponents, SingleComponent) {
  const auto labels = connected_components(cycle_graph(5));
  EXPECT_EQ(labels.count, 1u);
  for (auto c : labels.component_of) EXPECT_EQ(c, 0u);
}

TEST(ConnectedComponents, MultipleComponentsDeterministicIds) {
  // {0,1}, {2,3,4}, isolated {5}
  const Graph g = make_graph(6, {{0, 1}, {2, 3}, {3, 4}});
  const auto labels = connected_components(g);
  EXPECT_EQ(labels.count, 3u);
  EXPECT_EQ(labels.component_of[0], 0u);
  EXPECT_EQ(labels.component_of[1], 0u);
  EXPECT_EQ(labels.component_of[2], 1u);
  EXPECT_EQ(labels.component_of[4], 1u);
  EXPECT_EQ(labels.component_of[5], 2u);
  const auto sizes = labels.sizes();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 3, 1}));
}

TEST(ConnectedComponents, EmptyGraph) {
  const auto labels = connected_components(Graph{});
  EXPECT_EQ(labels.count, 0u);
  EXPECT_TRUE(labels.component_of.empty());
}

TEST(LargestComponent, PicksBiggest) {
  const Graph g = make_graph(7, {{0, 1}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(largest_component(g), (NodeSet{2, 3, 4, 5}));
}

TEST(LargestComponent, EmptyGraph) {
  EXPECT_TRUE(largest_component(Graph{}).empty());
}

TEST(BfsDistances, PathGraph) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
}

TEST(BfsDistances, UnreachableIsInfinity) {
  const Graph g = make_graph(3, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(BfsDistances, BadSourceThrows) {
  const Graph g = make_graph(2, {{0, 1}});
  EXPECT_THROW(bfs_distances(g, 5), Error);
}

TEST(DegreeStats, CompleteGraph) {
  const auto s = degree_stats(complete_graph(6));
  EXPECT_EQ(s.min, 5u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(DegreeStats, Star) {
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
}

TEST(DegreeStats, EmptyGraph) {
  const auto s = degree_stats(Graph{});
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(MeanDegree, SubsetOfNodes) {
  const Graph g = make_graph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(mean_degree(g, {0}), 3.0);
  EXPECT_DOUBLE_EQ(mean_degree(g, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(mean_degree(g, {}), 0.0);
  EXPECT_THROW(mean_degree(g, {9}), Error);
}

}  // namespace
}  // namespace kcc
