#include "metrics/scoring.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

TEST(Scoring, IsolatedClique) {
  const Graph g = complete_graph(5);
  const CommunityScores s = score_community(g, {0, 1, 2, 3, 4});
  EXPECT_EQ(s.internal_edges, 10u);
  EXPECT_EQ(s.boundary_edges, 0u);
  EXPECT_DOUBLE_EQ(s.density, 1.0);
  EXPECT_DOUBLE_EQ(s.conductance, 0.0);
  EXPECT_DOUBLE_EQ(s.expansion, 0.0);
  EXPECT_DOUBLE_EQ(s.cut_ratio, 0.0);
  EXPECT_GT(s.separability, 1e9);  // no boundary: sentinel
}

TEST(Scoring, Tier1LikeCommunity) {
  // Triangle with 6 external pendants on node 0.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  for (NodeId leaf = 3; leaf < 9; ++leaf) b.add_edge(0, leaf);
  const Graph g = b.build();
  const CommunityScores s = score_community(g, {0, 1, 2});
  EXPECT_EQ(s.internal_edges, 3u);
  EXPECT_EQ(s.boundary_edges, 6u);
  EXPECT_DOUBLE_EQ(s.density, 1.0);
  // conductance = 6 / (6 + 6) = 0.5 — "bad" under the internal-vs-external
  // lens despite being a perfect clique (the paper's core argument).
  EXPECT_DOUBLE_EQ(s.conductance, 0.5);
  EXPECT_DOUBLE_EQ(s.expansion, 2.0);
  EXPECT_DOUBLE_EQ(s.cut_ratio, 6.0 / (3.0 * 6.0));
  EXPECT_DOUBLE_EQ(s.separability, 0.5);
}

TEST(Scoring, EmptyAndSingleton) {
  const Graph g = complete_graph(3);
  const CommunityScores empty = score_community(g, {});
  EXPECT_EQ(empty.size, 0u);
  const CommunityScores single = score_community(g, {1});
  EXPECT_EQ(single.size, 1u);
  EXPECT_EQ(single.boundary_edges, 2u);
  EXPECT_DOUBLE_EQ(single.density, 0.0);
  EXPECT_DOUBLE_EQ(single.conductance, 1.0);
}

TEST(Scoring, UnsortedThrows) {
  const Graph g = complete_graph(3);
  EXPECT_THROW(score_community(g, {2, 1}), Error);
}

TEST(Scoring, ConductanceBounds) {
  const Graph g = testing::random_graph(40, 0.2, 5);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    NodeSet community;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.next_bool(0.3)) community.push_back(v);
    }
    if (community.empty()) continue;
    const CommunityScores s = score_community(g, community);
    EXPECT_GE(s.conductance, 0.0);
    EXPECT_LE(s.conductance, 1.0);
    EXPECT_GE(s.density, 0.0);
    EXPECT_LE(s.density, 1.0);
  }
}

}  // namespace
}  // namespace kcc
