// Integration tests: the full paper pipeline on a test-scale ecosystem.
#include "analysis/pipeline.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.h"
#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {
namespace {

const PipelineResult& result() {
  static const PipelineResult r = [] {
    PipelineOptions options;
    options.synth = SynthParams::test_scale();
    return run_pipeline(options);
  }();
  return r;
}

TEST(Pipeline, ReachesTheApexK) {
  const SynthParams p = SynthParams::test_scale();
  EXPECT_GE(result().cpm.max_k, p.apex_clique_size);
  EXPECT_EQ(result().cpm.min_k, 2u);
}

TEST(Pipeline, K2IsTheWholeTopology) {
  // Single connected component -> one k=2 community covering every AS.
  const auto& k2 = result().cpm.at(2);
  ASSERT_EQ(k2.count(), 1u);
  EXPECT_EQ(k2.communities[0].size(), result().eco.num_ases());
}

TEST(Pipeline, ApexCommunityContainsPlantedClique) {
  const auto& top = result().cpm.at(result().cpm.max_k);
  ASSERT_GE(top.count(), 1u);
  bool found = false;
  for (const Community& c : top.communities) {
    if (is_subset(result().eco.apex_clique, c.nodes)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Pipeline, SatellitesJoinTheApexCommunity) {
  const SynthParams p = SynthParams::test_scale();
  // Satellites connect to apex-1 nodes, so they appear in the community at
  // the apex k (they form adjacent apex-sized cliques).
  const auto& top = result().cpm.at(p.apex_clique_size);
  const Community& main = top.communities[0];
  for (NodeId s : result().eco.apex_satellites) {
    EXPECT_TRUE(contains(main.nodes, s));
  }
}

TEST(Pipeline, MainSizeDecreasesWithK) {
  std::size_t previous = std::numeric_limits<std::size_t>::max();
  for (const auto& stats : result().level_stats) {
    EXPECT_LE(stats.main_size, previous);
    previous = stats.main_size;
  }
}

TEST(Pipeline, ManyCommunitiesAtLowKFewAtHighK) {
  const auto& stats = result().level_stats;
  ASSERT_GE(stats.size(), 5u);
  // Fig. 4.1 shape: the k=3 count dwarfs the top-k count.
  const auto at_k3 = stats[1].community_count;
  const auto at_top = stats.back().community_count;
  EXPECT_GT(at_k3, 10u);
  EXPECT_LE(at_top, 5u);
  EXPECT_GT(at_k3, at_top * 4);
}

TEST(Pipeline, MainDensityRisesTowardsApex) {
  // Fig. 4.4(a) shape: main community density low at k=3, ~1 near the apex.
  const auto& r = result();
  const auto main_ids = main_ids_by_k(r.tree);
  const double low =
      r.metrics_of(3, main_ids[3 - r.cpm.min_k]).density;
  const double high =
      r.metrics_of(r.cpm.max_k, main_ids[r.cpm.max_k - r.cpm.min_k]).density;
  EXPECT_LT(low, 0.2);
  EXPECT_GT(high, 0.8);
}

TEST(Pipeline, MainOdfRisesTowardsApex) {
  // Fig. 4.4(b) shape: the apex community members direct most links outside.
  const auto& r = result();
  const auto main_ids = main_ids_by_k(r.tree);
  const double low = r.metrics_of(3, main_ids[3 - r.cpm.min_k]).avg_odf;
  const double high =
      r.metrics_of(r.cpm.max_k, main_ids[r.cpm.max_k - r.cpm.min_k]).avg_odf;
  EXPECT_LT(low, high);
  EXPECT_GT(high, 0.5);
}

TEST(Pipeline, ProfilesCoverEveryCommunity) {
  EXPECT_EQ(result().profiles.size(), result().cpm.total_communities());
}

TEST(Pipeline, HighKCommunitiesAreOnIxp) {
  // Sec. 4: communities with high k are made of on-IXP ASes.
  for (const auto& p : result().profiles) {
    if (p.k >= SynthParams::test_scale().crown_clique_min) {
      EXPECT_GT(p.on_ixp_fraction, 0.8) << "k" << p.k << "id" << p.id;
    }
  }
}

TEST(Pipeline, SomeRootCommunitiesAreCountryContained) {
  std::size_t contained = 0;
  for (const auto& p : result().profiles) {
    if (result().bands.band_of(p.k) == Band::kRoot && !p.is_main &&
        !p.containing_country.empty()) {
      ++contained;
    }
  }
  EXPECT_GT(contained, 5u);  // paper found 382 at full scale
}

TEST(Pipeline, CrownHasFullShareButTrunkDoesNot) {
  const auto summaries = summarize_bands(result().profiles, result().bands);
  const auto& root = summaries[0];
  const auto& trunk = summaries[1];
  const auto& crown = summaries[2];
  EXPECT_GT(crown.with_full_share_ixp, 0u);
  EXPECT_EQ(trunk.with_full_share_ixp, 0u);
  EXPECT_GT(root.community_count, trunk.community_count);
  EXPECT_GT(root.community_count, crown.community_count);
}

TEST(Pipeline, OverlapAggregateInRange) {
  const auto agg = aggregate_parallel_vs_main(result().overlaps);
  EXPECT_GT(agg.k_count, 0u);
  EXPECT_GT(agg.mean, 0.0);
  EXPECT_LE(agg.mean, 1.0);
  EXPECT_GE(agg.variance, 0.0);
}

TEST(Pipeline, MetricsAlignedWithCommunities) {
  const auto& r = result();
  for (std::size_t k = r.cpm.min_k; k <= r.cpm.max_k; ++k) {
    const auto& level = r.metrics_by_k[k - r.cpm.min_k];
    ASSERT_EQ(level.size(), r.cpm.at(k).count());
    for (std::size_t i = 0; i < level.size(); ++i) {
      EXPECT_EQ(level[i].id, i);
      EXPECT_EQ(level[i].size, r.cpm.at(k).communities[i].size());
    }
  }
  EXPECT_THROW(r.metrics_of(999, 0), Error);
}

TEST(Pipeline, ReportsRenderWithoutError) {
  std::ostringstream os;
  print_ecosystem_summary(os, result().eco);
  print_level_table(os, result());
  print_band_summary(os, result());
  print_overlap_summary(os, result());
  EXPECT_GT(os.str().size(), 500u);
  EXPECT_NE(os.str().find("Table 2.1"), std::string::npos);
}

TEST(Pipeline, AnalyzePrebuiltEcosystem) {
  SynthParams p = SynthParams::test_scale();
  p.seed = 9;
  AsEcosystem eco = generate_ecosystem(p);
  const std::size_t n = eco.num_ases();
  cpm::Options cpm;
  cpm.max_k = 6;  // restrict for speed
  const PipelineResult r = analyze_ecosystem(std::move(eco), cpm);
  EXPECT_EQ(r.eco.num_ases(), n);
  EXPECT_EQ(r.cpm.max_k, 6u);
  EXPECT_EQ(r.level_stats.size(), 5u);
}

}  // namespace
}  // namespace kcc
