// Malformed-input hardening for the loaders: every bad line in an edge
// list must fail loudly with the offending line number (never be silently
// skipped), and the CSV writer must reject structural misuse. Runs under
// the sanitize label so the parsers also get exercised under TSan/ASan.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"
#include "io/csv.h"
#include "io/edge_list.h"

namespace kcc {
namespace {

LabeledGraph parse(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

std::string error_of(const std::string& text) {
  try {
    parse(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected read_edge_list to throw on: " << text;
  return "";
}

// ------------------------------------------------------------- edge lists

TEST(EdgeListMalformed, TruncatedLineThrowsWithLineNumber) {
  const std::string message = error_of("1 2\n3\n");
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("1 token"), std::string::npos) << message;
}

TEST(EdgeListMalformed, TrailingTokensThrow) {
  const std::string message = error_of("1 2 3\n");
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("3 token"), std::string::npos) << message;
}

TEST(EdgeListMalformed, NonNumericIdsThrow) {
  // These used to be silently skipped: operator>> failed on the first
  // token and the line was treated as blank. Now each is a hard error.
  for (const char* text :
       {"as7018 as3356\n", "1 x\n", "-1 2\n", "1.5 2\n", "0x10 2\n"}) {
    const std::string message = error_of(text);
    EXPECT_NE(message.find("line 1"), std::string::npos) << text << message;
  }
}

TEST(EdgeListMalformed, OverflowingIdThrows) {
  const std::string message = error_of("99999999999999999999999 1\n");
  EXPECT_NE(message.find("out of range"), std::string::npos) << message;
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
}

TEST(EdgeListMalformed, HugeButRepresentableIdsLoad) {
  // Labels near 2^64 are fine: they are remapped to dense ids.
  const LabeledGraph g = parse("18446744073709551615 7018\n");
  EXPECT_EQ(g.graph.num_nodes(), 2u);
  EXPECT_EQ(g.graph.num_edges(), 1u);
  EXPECT_EQ(g.node_of(18446744073709551615ull), 1u);
}

TEST(EdgeListMalformed, SelfLoopsAndDuplicatesAreDroppedSilently) {
  // The paper's "spurious data" cleaning: well-formed but redundant lines
  // are dropped, not errors.
  const LabeledGraph g = parse("1 1\n1 2\n2 1\n1 2\n");
  EXPECT_EQ(g.graph.num_nodes(), 2u);
  EXPECT_EQ(g.graph.num_edges(), 1u);
}

TEST(EdgeListMalformed, CommentsAndBlankLinesAreIgnored) {
  const LabeledGraph g =
      parse("# AS topology\n\n  \n1 2 # measured 2010-04\n# 3 4\n");
  EXPECT_EQ(g.graph.num_edges(), 1u);
}

TEST(EdgeListMalformed, GarbageAfterCommentStripIsStillChecked) {
  const std::string message = error_of("1 oops # comment\n");
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
}

TEST(EdgeListMalformed, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/nope.txt"), Error);
}

// ------------------------------------------------------------------- csv

TEST(CsvMalformed, EmptyHeaderRejected) {
  EXPECT_THROW(CsvWriter{std::vector<std::string>{}}, Error);
}

TEST(CsvMalformed, ArityMismatchRejected) {
  CsvWriter csv({"k", "count"});
  csv.add_row({"3", "17"});
  EXPECT_THROW(csv.add_row({"4"}), Error);
  EXPECT_THROW(csv.add_row({"4", "9", "extra"}), Error);
}

TEST(CsvMalformed, UnwritablePathRejected) {
  CsvWriter csv({"k"});
  csv.add_row({"2"});
  EXPECT_THROW(csv.save("/nonexistent/dir/out.csv"), Error);
}

TEST(CsvMalformed, QuotingSurvivesHostileCells) {
  CsvWriter csv({"name", "note"});
  csv.add_row({"a,b", "say \"hi\"\nbye"});
  EXPECT_EQ(csv.to_string(),
            "name,note\n\"a,b\",\"say \"\"hi\"\"\nbye\"\n");
}

}  // namespace
}  // namespace kcc
