// Snapshot round-trip identity and corruption rejection (io/snapshot.h).
//
// The contract under test: for every registry engine and every seeded graph
// family, write -> mmap -> to_result() reproduces the in-memory cpm::Result
// byte-identically under cpm::canonical_text; and any structural damage to
// the file (truncation, bad magic, wrong version, flipped payload bytes) is
// rejected loudly at open, never served as partial data.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "check/generators.h"
#include "common/error.h"
#include "cpm/engine.h"
#include "io/snapshot.h"
#include "test_helpers.h"

namespace kcc {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("kcc_snapshot_test_" + name)).string();
}

/// Removes the file on scope exit so failed tests don't litter /tmp.
struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

cpm::Result run_engine(const std::string& engine, const Graph& g) {
  cpm::Options options;
  options.engine = engine;
  options.threads = 2;
  return cpm::Engine(options).run(g);
}

void expect_round_trip(const cpm::Result& original, const std::string& tag) {
  TempFile file(tag + ".snap");
  snapshot::write_snapshot_file(file.path, original);

  snapshot::SnapshotView view(file.path);
  EXPECT_EQ(view.engine_name(), original.engine_name) << tag;
  EXPECT_EQ(view.exactness(), original.exactness) << tag;
  EXPECT_EQ(view.has_tree(), original.has_tree) << tag;
  EXPECT_EQ(view.num_cliques(), original.cpm.cliques.size()) << tag;

  const cpm::Result reread = view.to_result();
  // canonical_text covers cliques, per-k communities with clique ids, the
  // clique->community maps and the full tree, so equality here is the
  // byte-identity contract.
  cpm::CanonicalOptions canon;
  EXPECT_EQ(cpm::canonical_text(original, canon),
            cpm::canonical_text(reread, canon))
      << tag;
}

TEST(Snapshot, RoundTripAllEnginesOnSharedFamilies) {
  const Graph graphs[] = {
      testing::overlapping_cliques(6, 5, 3),
      testing::random_graph(40, 0.25, 7),
      testing::preferential_attachment_graph(60, 3, 11),
  };
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    std::size_t gi = 0;
    for (const Graph& g : graphs) {
      // The reference oracle is exponential; keep it to the small fixture.
      if (info.caps.exponential && g.num_nodes() > 20) continue;
      const cpm::Result result = run_engine(info.name, g);
      expect_round_trip(result, info.name + "_g" + std::to_string(gi));
      ++gi;
    }
  }
}

TEST(Snapshot, RoundTripSeededCorpus) {
  // A slice of the fuzzer corpus: the degenerate shapes plus a few seeded
  // families, through the default engine.
  const std::size_t count = check::degenerate_graph_count() + 6;
  for (std::size_t index = 0; index < count; ++index) {
    const check::TestGraph tg = check::generate_graph(29, index);
    const Graph g = tg.build();
    const cpm::Result result = run_engine("sweep", g);
    if (result.cpm.max_k < result.cpm.min_k) continue;  // nothing to nest
    expect_round_trip(result, "corpus" + std::to_string(index));
  }
}

TEST(Snapshot, PostingsAndQueriesMatchResult) {
  const Graph g = testing::random_graph(50, 0.3, 3);
  const cpm::Result result = run_engine("sweep", g);
  TempFile file("queries.snap");
  snapshot::write_snapshot_file(file.path, result);
  snapshot::SnapshotView view(file.path);

  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    const CommunitySet& set = result.cpm.at(k);
    ASSERT_EQ(view.community_count(k), set.count());
    for (const Community& community : set.communities) {
      const auto nodes = view.community_nodes(k, community.id);
      ASSERT_EQ(NodeSet(nodes.begin(), nodes.end()), community.nodes);
      for (NodeId v : community.nodes) {
        bool found = false;
        for (const snapshot::Posting& p : view.postings(v)) {
          if (p.k == k && p.community == community.id) found = true;
        }
        EXPECT_TRUE(found) << "posting missing for node " << v << " k=" << k;
      }
    }
  }
  // Nodes outside every community (or outside the graph) have no postings.
  EXPECT_TRUE(view.postings(1 << 20).empty());
}

TEST(Snapshot, ManifestAndDigestExposed) {
  const Graph g = testing::overlapping_cliques(5, 4, 2);
  const cpm::Result result = run_engine("sweep", g);
  TempFile file("manifest.snap");
  snapshot::write_snapshot_file(file.path, result, "{\"custom\":true}");
  snapshot::SnapshotView view(file.path);
  EXPECT_EQ(view.manifest_json(), "{\"custom\":true}");
  EXPECT_NE(view.digest(), 0u);

  const std::string generated =
      snapshot::default_manifest_json("kcc", result);
  EXPECT_NE(generated.find("\"engine\":\"sweep\""), std::string::npos);
  EXPECT_NE(generated.find("\"exactness\":\"exact\""), std::string::npos);
}

// -- rejection cases --------------------------------------------------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const Graph g = testing::overlapping_cliques(6, 5, 3);
    result_ = run_engine("sweep", g);
    file_ = std::make_unique<TempFile>("corrupt.snap");
    snapshot::write_snapshot_file(file_->path, result_);
    bytes_ = read_file(file_->path);
    ASSERT_GT(bytes_.size(), snapshot::kHeaderBytes);
  }

  void expect_rejected(const std::string& bytes, const std::string& why) {
    TempFile bad("bad_" + why + ".snap");
    write_file(bad.path, bytes);
    EXPECT_THROW(snapshot::SnapshotView view(bad.path), Error) << why;
    EXPECT_THROW(snapshot::read_snapshot_file(bad.path), Error) << why;
  }

  cpm::Result result_;
  std::unique_ptr<TempFile> file_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, RejectsTruncatedFile) {
  // Every prefix must fail: shorter than the header, mid-table, mid-section.
  expect_rejected(bytes_.substr(0, 10), "tiny");
  expect_rejected(bytes_.substr(0, snapshot::kHeaderBytes), "header_only");
  expect_rejected(bytes_.substr(0, bytes_.size() / 2), "half");
  expect_rejected(bytes_.substr(0, bytes_.size() - 1), "one_byte_short");
}

TEST_F(SnapshotCorruption, RejectsBadMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  expect_rejected(bad, "magic");
}

TEST_F(SnapshotCorruption, RejectsWrongVersion) {
  std::string bad = bytes_;
  bad[8] = 99;  // version field (little-endian u32 at offset 8)
  expect_rejected(bad, "version");
}

TEST_F(SnapshotCorruption, RejectsDigestMismatch) {
  // Flip one payload byte: the header digest no longer matches.
  std::string bad = bytes_;
  bad[bytes_.size() - 1] ^= 0x40;
  expect_rejected(bad, "payload_flip");
  // And a doctored digest with intact payload must fail too.
  std::string forged = bytes_;
  forged[24] ^= 0x01;  // digest field at offset 24
  expect_rejected(forged, "digest_forged");
}

TEST_F(SnapshotCorruption, RejectsTrailingGarbage) {
  expect_rejected(bytes_ + std::string(8, '\0'), "appended");
}

TEST_F(SnapshotCorruption, RejectsMissingFile) {
  EXPECT_THROW(snapshot::SnapshotView view(temp_path("does_not_exist.snap")),
               Error);
}

TEST_F(SnapshotCorruption, ValidFileStillLoadsAfterAllThat) {
  // Guard against the fixture accidentally testing a broken writer.
  snapshot::SnapshotView view(file_->path);
  EXPECT_EQ(cpm::canonical_text(view.to_result()),
            cpm::canonical_text(result_));
}

}  // namespace
}  // namespace kcc
