#include "analysis/temporal.h"

#include <gtest/gtest.h>

#include "graph/graph_algorithms.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::random_graph;

TEST(ChurnStep, DeterministicInSeed) {
  const Graph g = random_graph(100, 0.1, 3);
  ChurnParams params;
  const Graph a = churn_step(g, params, 11);
  const Graph b = churn_step(g, params, 11);
  const Graph c = churn_step(g, params, 12);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(ChurnStep, PreservesNodeCountAndMinDegree) {
  const Graph g = random_graph(80, 0.15, 5);
  ChurnParams params;
  params.edge_drop_fraction = 0.3;
  const Graph next = churn_step(g, params, 1);
  EXPECT_EQ(next.num_nodes(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 1) {
      EXPECT_GE(next.degree(v), 1u) << "node " << v << " stranded";
    }
  }
}

TEST(ChurnStep, ZeroChurnKeepsDroppableStructure) {
  const Graph g = random_graph(50, 0.2, 7);
  ChurnParams params;
  params.edge_drop_fraction = 0.0;
  params.stub_rewire_fraction = 0.0;
  params.new_edges = 0;
  const Graph next = churn_step(g, params, 1);
  EXPECT_EQ(next.edges(), g.edges());
}

TEST(ChurnStep, TooSmallGraphThrows) {
  EXPECT_THROW(churn_step(testing::complete_graph(4), ChurnParams{}, 1),
               Error);
}

TEST(MatchCommunities, IdentityIsAllSurvivals) {
  const std::vector<NodeSet> cover{{0, 1, 2}, {4, 5, 6, 7}};
  const auto events = match_communities(cover, cover);
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, CommunityEvent::Kind::kSurvived);
    EXPECT_DOUBLE_EQ(e.jaccard, 1.0);
    EXPECT_EQ(e.size_change, 0);
  }
}

TEST(MatchCommunities, BirthAndDeath) {
  const std::vector<NodeSet> before{{0, 1, 2}, {4, 5, 6}};
  const std::vector<NodeSet> after{{0, 1, 2, 3}, {8, 9, 10}};
  const auto events = match_communities(before, after);
  std::size_t survived = 0, born = 0, died = 0;
  for (const auto& e : events) {
    switch (e.kind) {
      case CommunityEvent::Kind::kSurvived:
        ++survived;
        EXPECT_EQ(e.size_change, 1);
        break;
      case CommunityEvent::Kind::kBorn:
        ++born;
        break;
      case CommunityEvent::Kind::kDied:
        ++died;
        break;
    }
  }
  EXPECT_EQ(survived, 1u);
  EXPECT_EQ(born, 1u);
  EXPECT_EQ(died, 1u);
}

TEST(MatchCommunities, LowJaccardIsNotASurvival) {
  const std::vector<NodeSet> before{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  const std::vector<NodeSet> after{{0, 20, 21, 22, 23, 24, 25, 26, 27, 28}};
  const auto events = match_communities(before, after, 0.3);
  ASSERT_EQ(events.size(), 2u);  // one death, one birth
  EXPECT_EQ(events[0].kind, CommunityEvent::Kind::kDied);
  EXPECT_EQ(events[1].kind, CommunityEvent::Kind::kBorn);
}

TEST(MatchCommunities, EmptySides) {
  EXPECT_TRUE(match_communities({}, {}).empty());
  const auto births = match_communities({}, {{0, 1}});
  ASSERT_EQ(births.size(), 1u);
  EXPECT_EQ(births[0].kind, CommunityEvent::Kind::kBorn);
  const auto deaths = match_communities({{0, 1}}, {});
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0].kind, CommunityEvent::Kind::kDied);
}

TEST(TrackCommunities, RunsAndCounts) {
  const Graph g = random_graph(120, 0.08, 21);
  ChurnParams params;
  params.new_edges = 30;
  const TemporalSummary summary = track_communities(g, 3, 3, params, 5);
  EXPECT_EQ(summary.steps, 3u);
  EXPECT_EQ(summary.community_counts.size(), 4u);
  EXPECT_GT(summary.community_counts[0], 0u);
  EXPECT_GT(summary.survivals + summary.births + summary.deaths, 0u);
  if (summary.survivals > 0) {
    EXPECT_GT(summary.mean_survivor_jaccard, 0.0);
    EXPECT_LE(summary.mean_survivor_jaccard, 1.0);
  }
}

TEST(TrackCommunities, GentleChurnMostlySurvives) {
  const Graph g = random_graph(150, 0.08, 33);
  ChurnParams gentle;
  gentle.edge_drop_fraction = 0.005;
  gentle.stub_rewire_fraction = 0.01;
  gentle.new_edges = 5;
  const TemporalSummary summary = track_communities(g, 3, 2, gentle, 9);
  EXPECT_GT(summary.survivals, summary.deaths);
}

}  // namespace
}  // namespace kcc
