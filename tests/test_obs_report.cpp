// Run reports and hardware counters: manifest collection, StageScope /
// RunRecorder capture, run-report JSON round-tripped through the flat
// parser, the KCC_HW_COUNTERS=off fallback, histogram quantiles, and the
// tracer's span-overflow drop counter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"

namespace kcc {
namespace {

// ------------------------------------------------------------ flat parser

TEST(FlatJson, FlattensNestedObjectsAndArrays) {
  const obs::FlatJson doc = obs::parse_json_flat(
      R"({"a":{"b":[1,"x",{"c":2.5}]},"t":true,"f":false,"n":null,)"
      R"("neg":-3e2})");
  EXPECT_DOUBLE_EQ(doc.number("a.b.0"), 1.0);
  EXPECT_EQ(doc.string("a.b.1"), "x");
  EXPECT_DOUBLE_EQ(doc.number("a.b.2.c"), 2.5);
  EXPECT_DOUBLE_EQ(doc.number("t"), 1.0);
  EXPECT_DOUBLE_EQ(doc.number("f"), 0.0);
  EXPECT_FALSE(doc.has_number("n"));
  EXPECT_DOUBLE_EQ(doc.number("neg"), -300.0);
  // Fallbacks for absent paths.
  EXPECT_DOUBLE_EQ(doc.number("missing", 7.0), 7.0);
  EXPECT_EQ(doc.string("missing", "d"), "d");
}

TEST(FlatJson, DecodesStringEscapes) {
  const obs::FlatJson doc =
      obs::parse_json_flat(R"({"s":"a\"b\\c\nd\tA"})");
  EXPECT_EQ(doc.string("s"), "a\"b\\c\nd\tA");
}

TEST(FlatJson, ThrowsOnMalformedInput) {
  EXPECT_THROW(obs::parse_json_flat("{"), Error);
  EXPECT_THROW(obs::parse_json_flat(R"({"a":})"), Error);
  EXPECT_THROW(obs::parse_json_flat(R"({"a":1} trailing)"), Error);
  EXPECT_THROW(obs::parse_json_flat(""), Error);
  EXPECT_THROW(obs::read_json_flat_file("/nonexistent/path.json"), Error);
}

// --------------------------------------------------------------- manifest

TEST(RunManifest, CollectsBuildAndHostFacts) {
  const obs::RunManifest m = obs::collect_manifest("test_obs_report");
  EXPECT_EQ(m.tool, "test_obs_report");
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_GT(m.cpu_logical_cores, 0u);
  EXPECT_FALSE(m.hw_counters.empty());

  std::ostringstream out;
  obs::write_manifest_json(out, m);
  const obs::FlatJson doc = obs::parse_json_flat(out.str());
  EXPECT_EQ(doc.string("tool"), "test_obs_report");
  EXPECT_EQ(doc.string("git_sha"), m.git_sha);
  EXPECT_DOUBLE_EQ(doc.number("cpu_logical_cores"),
                   static_cast<double>(m.cpu_logical_cores));
}

// ------------------------------------------------- hw counters + fallback

TEST(HwCounterSet, EnvOverrideDisablesCountersButStaysValid) {
  // The env override is read at construction, so a locally constructed set
  // observes it regardless of what the process-global one decided.
  ASSERT_EQ(setenv("KCC_HW_COUNTERS", "off", 1), 0);
  {
    obs::HwCounterSet counters;
    EXPECT_FALSE(counters.available());
    EXPECT_EQ(counters.disabled_reason(), "KCC_HW_COUNTERS=off");
    EXPECT_EQ(counters.status(), "KCC_HW_COUNTERS=off");
    const obs::HwCounterValues v = counters.read();
    EXPECT_FALSE(v.available);
    EXPECT_EQ(v.cycles, 0u);
    EXPECT_EQ(v.instructions, 0u);
    EXPECT_EQ(v.task_clock_ns, 0u);
  }
  ASSERT_EQ(unsetenv("KCC_HW_COUNTERS"), 0);
}

TEST(HwCounterSet, ValuesSubtractFieldwise) {
  obs::HwCounterValues a;
  a.available = true;
  a.cycles = 100;
  a.instructions = 200;
  a.branch_misses = 30;
  a.cache_misses = 40;
  a.task_clock_ns = 5000;
  obs::HwCounterValues b = a;
  b.cycles = 150;
  b.instructions = 260;
  const obs::HwCounterValues d = b - a;
  EXPECT_TRUE(d.available);
  EXPECT_EQ(d.cycles, 50u);
  EXPECT_EQ(d.instructions, 60u);
  EXPECT_EQ(d.branch_misses, 0u);
}

// --------------------------------------------- recorder + report document

TEST(RunRecorder, StageScopeRecordsOnlyWhenEnabled) {
  obs::RunRecorder& recorder = obs::RunRecorder::instance();
  recorder.clear();
  recorder.set_enabled(false);
  { obs::StageScope scope("ignored"); }
  EXPECT_TRUE(recorder.stages().empty());

  recorder.set_enabled(true);
  {
    obs::StageScope scope("measured");
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  recorder.set_enabled(false);
  const std::vector<obs::StageSample> stages = recorder.stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].name, "measured");
  EXPECT_GE(stages[0].wall_seconds, 0.0);
  recorder.clear();
}

TEST(RunReport, RoundTripsThroughFlatParser) {
  obs::RunRecorder& recorder = obs::RunRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  { obs::StageScope scope("stage_a"); }
  { obs::StageScope scope("stage_b"); }
  recorder.set_enabled(false);

  std::ostringstream out;
  obs::write_run_report(out, obs::collect_manifest("test_obs_report"));
  const obs::FlatJson doc = obs::parse_json_flat(out.str());
  EXPECT_DOUBLE_EQ(doc.number("kcc_run_report_version"),
                   static_cast<double>(obs::kRunReportVersion));
  EXPECT_EQ(doc.string("manifest.tool"), "test_obs_report");
  EXPECT_EQ(doc.string("stages.0.name"), "stage_a");
  EXPECT_EQ(doc.string("stages.1.name"), "stage_b");
  EXPECT_TRUE(doc.has_number("stages.0.wall_seconds"));
  EXPECT_TRUE(doc.has_number("stages.0.hw.cycles"));
  EXPECT_TRUE(doc.has_number("rss.peak_bytes"));
  EXPECT_GT(doc.number("rss.peak_bytes"), 0.0);
  // The hw block states availability either way; with counters off the
  // report is still complete (satellite: graceful degradation).
  EXPECT_TRUE(doc.has_number("hw.available"));
  // The metrics snapshot rides along.
  EXPECT_TRUE(doc.has_number("metrics.gauges.process_peak_rss_bytes.value"));
  recorder.clear();
}

TEST(RunReport, AnnotationsSerializeIntoTheReport) {
  obs::RunRecorder& recorder = obs::RunRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  obs::annotate_run("cpm_engine", "almost_exact");
  obs::annotate_run("cpm_exactness", "almost_exact");
  recorder.annotate("quoted", "a\"b");
  recorder.set_enabled(false);

  std::ostringstream out;
  obs::write_run_report(out, obs::collect_manifest("test_obs_report"));
  const obs::FlatJson doc = obs::parse_json_flat(out.str());
  EXPECT_EQ(doc.string("annotations.cpm_engine"), "almost_exact");
  EXPECT_EQ(doc.string("annotations.cpm_exactness"), "almost_exact");
  EXPECT_EQ(doc.string("annotations.quoted"), "a\"b");
  recorder.clear();

  // With the recorder disabled the free function is a no-op, so engines can
  // stamp annotations unconditionally.
  obs::annotate_run("ignored", "x");
  EXPECT_TRUE(recorder.annotations().empty());
}

TEST(RunReport, WriteFileRejectsBadPath) {
  EXPECT_THROW(obs::write_run_report_file(
                   "/nonexistent/dir/report.json",
                   obs::collect_manifest("test_obs_report")),
               Error);
}

// ------------------------------------------------------ histogram quantiles

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  obs::Histogram h({10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  // 10 observations in (10, 20]: quantiles interpolate across that bucket.
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 11.0);
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZero) {
  obs::Histogram h({10.0, 20.0});
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
}

TEST(HistogramQuantile, OverflowClampsToLargestBound) {
  obs::Histogram h({1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(HistogramQuantile, JsonExportEmitsPercentiles) {
  obs::Histogram& h = obs::metrics().histogram(
      "test_quantile_export", obs::Histogram::linear_bounds(1.0, 1.0, 4));
  for (int i = 0; i < 100; ++i) h.observe(2.5);
  std::ostringstream out;
  obs::metrics().write_json(out);
  const obs::FlatJson doc = obs::parse_json_flat(out.str());
  EXPECT_DOUBLE_EQ(
      doc.number("histograms.test_quantile_export.p50"), 2.5);
  EXPECT_TRUE(doc.has_number("histograms.test_quantile_export.p90"));
  EXPECT_TRUE(doc.has_number("histograms.test_quantile_export.p99"));
}

// -------------------------------------------------- tracer drop accounting

TEST(TracerDrops, OverflowIncrementsDroppedSpansCounter) {
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::Counter& dropped =
      obs::metrics().counter("trace_dropped_spans_total");
  const std::uint64_t before = dropped.value();
  tracer.clear();
  tracer.set_enabled(true);
  // Fill this thread's bounded buffer, then overflow it by three.
  for (std::size_t i = 0; i < obs::Tracer::kMaxEventsPerThread + 3; ++i) {
    tracer.record("spam", 0, 1);
  }
  tracer.set_enabled(false);
  EXPECT_GE(tracer.dropped_count(), 3u);
  EXPECT_GE(dropped.value(), before + 3);
  tracer.clear();
}

}  // namespace
}  // namespace kcc
