// Parameterized invariants of the synthetic ecosystem across seeds: the
// reproduction's shape claims must not depend on one lucky seed.
#include <gtest/gtest.h>

#include <map>

#include "common/set_ops.h"
#include "data/tags.h"
#include "graph/graph_algorithms.h"
#include "synth/as_topology.h"

namespace kcc {
namespace {

class SynthInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static const AsEcosystem& eco() {
    // One ecosystem per seed, cached across the suite's tests.
    static std::map<std::uint64_t, AsEcosystem> cache;
    const std::uint64_t seed = GetParam();
    auto it = cache.find(seed);
    if (it == cache.end()) {
      SynthParams params = SynthParams::test_scale();
      params.seed = seed;
      it = cache.emplace(seed, generate_ecosystem(params)).first;
    }
    return it->second;
  }
};

TEST_P(SynthInvariants, SingleConnectedComponent) {
  EXPECT_EQ(connected_components(eco().topology.graph).count, 1u);
}

TEST_P(SynthInvariants, ApexPlantedAndInsideBigIxps) {
  const auto& e = eco();
  ASSERT_EQ(e.apex_clique.size(), SynthParams::test_scale().apex_clique_size);
  for (std::size_t i = 0; i < e.apex_clique.size(); ++i) {
    for (std::size_t j = i + 1; j < e.apex_clique.size(); ++j) {
      EXPECT_TRUE(e.topology.graph.has_edge(e.apex_clique[i],
                                            e.apex_clique[j]));
    }
  }
  for (IxpId big : e.big_ixps) {
    EXPECT_TRUE(is_subset(e.apex_clique, e.ixps.ixp(big).participants));
  }
}

TEST_P(SynthInvariants, NationalMajority) {
  const auto counts = count_geo_tags(eco().geo, eco().num_ases());
  EXPECT_GT(counts.national * 2, eco().num_ases());  // > 50% national
}

TEST_P(SynthInvariants, OnIxpMinority) {
  const auto counts = count_ixp_tags(eco().ixps, eco().num_ases());
  EXPECT_LT(counts.on_ixp, counts.not_on_ixp);
}

TEST_P(SynthInvariants, HeavyTailPresent) {
  const DegreeStats stats = degree_stats(eco().topology.graph);
  EXPECT_GE(stats.max, 50u);
  EXPECT_LE(stats.median, 4.0);
}

TEST_P(SynthInvariants, RelationshipsCoverAllEdges) {
  EXPECT_EQ(eco().relationships.edge_count(),
            eco().topology.graph.num_edges());
}

TEST_P(SynthInvariants, EveryIxpParticipantIsValid) {
  const auto& e = eco();
  for (const Ixp& ixp : e.ixps.all()) {
    EXPECT_GE(ixp.participants.size(), 1u);
    EXPECT_TRUE(is_sorted_unique(ixp.participants));
    for (NodeId v : ixp.participants) {
      EXPECT_LT(v, e.num_ases());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthInvariants,
                         ::testing::Values(1ULL, 42ULL, 777ULL, 31337ULL));

}  // namespace
}  // namespace kcc
