#include "graph/clustering.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::make_graph;
using testing::random_graph;

TEST(Clustering, TriangleCounts) {
  EXPECT_EQ(triangle_count(complete_graph(3)), 1u);
  EXPECT_EQ(triangle_count(complete_graph(5)), 10u);  // C(5,3)
  EXPECT_EQ(triangle_count(cycle_graph(5)), 0u);
  EXPECT_EQ(triangle_count(Graph{}), 0u);
}

TEST(Clustering, PerNodeCounts) {
  // Two triangles sharing node 2.
  const Graph g =
      make_graph(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  const auto per_node = triangles_per_node(g);
  EXPECT_EQ(per_node[0], 1u);
  EXPECT_EQ(per_node[2], 2u);
  EXPECT_EQ(per_node[4], 1u);
  EXPECT_EQ(triangle_count(g), 2u);
}

TEST(Clustering, LocalClustering) {
  const Graph g = complete_graph(4);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering(g, v), 1.0);
  }
  // Star: center has 0 clustering (no neighbor links).
  const Graph star = make_graph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(local_clustering(star, 0), 0.0);
  EXPECT_DOUBLE_EQ(local_clustering(star, 1), 0.0);  // degree 1
  EXPECT_THROW(local_clustering(star, 9), Error);
}

TEST(Clustering, AverageClusteringOfClique) {
  EXPECT_DOUBLE_EQ(average_clustering(complete_graph(6)), 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(cycle_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(Graph{}), 0.0);
}

TEST(Clustering, TransitivityKite) {
  // Triangle with a pendant: 1 triangle, wedges = 3 (deg2) + C(3,2) at the
  // degree-3 node + 0 = 1+1+3+0... compute explicitly for the kite graph.
  const Graph g = make_graph(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  // degrees: 2,2,3,1 -> wedges: 1 + 1 + 3 + 0 = 5; closed corners = 3.
  EXPECT_DOUBLE_EQ(transitivity(g), 3.0 / 5.0);
}

TEST(Clustering, AverageVsTransitivityConsistency) {
  // Both coefficients in [0,1] and agree on clique/triangle-free graphs.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(40, 0.2, seed);
    const double avg = average_clustering(g);
    const double trans = transitivity(g);
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 1.0);
    EXPECT_GE(trans, 0.0);
    EXPECT_LE(trans, 1.0);
  }
}

TEST(Clustering, LocalMatchesTriangleCounts) {
  const Graph g = random_graph(30, 0.3, 11);
  const auto per_node = triangles_per_node(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t degree = g.degree(v);
    if (degree < 2) continue;
    const double wedges = double(degree) * double(degree - 1) / 2.0;
    EXPECT_NEAR(local_clustering(g, v), double(per_node[v]) / wedges, 1e-12);
  }
}

}  // namespace
}  // namespace kcc
