#include "cpm/community_tree.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/set_ops.h"
#include "cpm/cpm.h"
#include "io/dot_export.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::overlapping_cliques;
using testing::random_graph;

TEST(CommunityTree, CompleteGraphIsAPath) {
  const CpmResult r = run_cpm(complete_graph(5));
  const CommunityTree tree = CommunityTree::build(r);
  EXPECT_EQ(tree.min_k(), 2u);
  EXPECT_EQ(tree.max_k(), 5u);
  EXPECT_EQ(tree.nodes().size(), 4u);
  EXPECT_EQ(tree.main_count(), 4u);
  EXPECT_EQ(tree.parallel_count(), 0u);
  const auto chain = tree.main_chain();
  ASSERT_EQ(chain.size(), 4u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(tree.nodes()[chain[i]].k, 2 + i);
    EXPECT_TRUE(tree.nodes()[chain[i]].is_main);
  }
}

TEST(CommunityTree, ParallelBranchAtTopLevel) {
  // Two 5-cliques sharing 3 nodes: at k=5 two communities, one main
  // (the apex) and one parallel.
  const CpmResult r = run_cpm(overlapping_cliques(5, 5, 3));
  const CommunityTree tree = CommunityTree::build(r);
  EXPECT_EQ(tree.level(5).size(), 2u);
  std::size_t mains = 0;
  for (int idx : tree.level(5)) {
    mains += tree.nodes()[idx].is_main ? 1 : 0;
  }
  EXPECT_EQ(mains, 1u);
  EXPECT_EQ(tree.parallel_count(), 1u);
}

TEST(CommunityTree, ParentContainsChild) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = random_graph(30, 0.25, seed);
    const CpmResult r = run_cpm(g);
    if (r.max_k < r.min_k) continue;
    const CommunityTree tree = CommunityTree::build(r);
    for (const TreeNode& node : tree.nodes()) {
      if (node.parent < 0) continue;
      const TreeNode& parent = tree.nodes()[node.parent];
      EXPECT_EQ(parent.k + 1, node.k);
      const auto& child_nodes =
          r.at(node.k).communities[node.community_id].nodes;
      const auto& parent_nodes =
          r.at(parent.k).communities[parent.community_id].nodes;
      EXPECT_TRUE(is_subset(child_nodes, parent_nodes));
    }
  }
}

TEST(CommunityTree, ExactlyOneMainPerLevel) {
  const Graph g = random_graph(40, 0.2, 17);
  const CpmResult r = run_cpm(g);
  const CommunityTree tree = CommunityTree::build(r);
  for (std::size_t k = tree.min_k(); k <= tree.max_k(); ++k) {
    std::size_t mains = 0;
    for (int idx : tree.level(k)) mains += tree.nodes()[idx].is_main ? 1 : 0;
    EXPECT_EQ(mains, 1u) << "k " << k;
  }
}

TEST(CommunityTree, ChildrenListsConsistent) {
  const Graph g = random_graph(35, 0.25, 9);
  const CommunityTree tree = CommunityTree::build(run_cpm(g));
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    for (int child : tree.nodes()[i].children) {
      EXPECT_EQ(tree.nodes()[child].parent, static_cast<int>(i));
    }
    if (tree.nodes()[i].parent >= 0) {
      const auto& siblings = tree.nodes()[tree.nodes()[i].parent].children;
      EXPECT_NE(std::find(siblings.begin(), siblings.end(),
                          static_cast<int>(i)),
                siblings.end());
    }
  }
}

TEST(CommunityTree, IndexOfRoundTrip) {
  const Graph g = random_graph(30, 0.3, 4);
  const CommunityTree tree = CommunityTree::build(run_cpm(g));
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    const TreeNode& node = tree.nodes()[i];
    EXPECT_EQ(tree.index_of(node.k, node.community_id), static_cast<int>(i));
  }
  EXPECT_EQ(tree.index_of(999, 0), -1);
}

TEST(CommunityTree, ApexIsLargestAtTopLevel) {
  const CpmResult r = run_cpm(overlapping_cliques(5, 5, 3));
  const CommunityTree tree = CommunityTree::build(r);
  const TreeNode& apex = tree.nodes()[tree.apex()];
  EXPECT_EQ(apex.k, r.max_k);
  EXPECT_EQ(apex.community_id, 0u);  // canonical: largest first
}

TEST(CommunityTree, BranchLengthAboveLeaf) {
  const CpmResult r = run_cpm(overlapping_cliques(5, 5, 3));
  const CommunityTree tree = CommunityTree::build(r);
  // The parallel 5-clique community is a 1-node branch.
  for (int idx : tree.level(5)) {
    if (!tree.nodes()[idx].is_main) {
      EXPECT_EQ(tree.branch_length_above(idx), 1u);
    } else {
      EXPECT_EQ(tree.branch_length_above(idx), 0u);
    }
  }
}

TEST(CommunityTree, EmptyCpmThrows) {
  CpmResult empty;
  empty.min_k = 2;
  empty.max_k = 1;
  EXPECT_THROW(CommunityTree::build(empty), Error);
}

TEST(TreeLevelStats, CountsMatch) {
  const CpmResult r = run_cpm(overlapping_cliques(5, 5, 3));
  const CommunityTree tree = CommunityTree::build(r);
  const auto stats = tree_level_stats(tree);
  ASSERT_EQ(stats.size(), r.max_k - r.min_k + 1);
  for (const auto& s : stats) {
    EXPECT_EQ(s.community_count, r.at(s.k).count());
    EXPECT_EQ(s.parallel_count + 1, s.community_count);
    EXPECT_GT(s.main_size, 0u);
  }
  // Main size shrinks weakly with k.
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_LE(stats[i].main_size, stats[i - 1].main_size);
  }
}

TEST(BandThresholds, Classification) {
  const BandThresholds bands{14, 28};
  EXPECT_EQ(bands.band_of(2), Band::kRoot);
  EXPECT_EQ(bands.band_of(14), Band::kRoot);
  EXPECT_EQ(bands.band_of(15), Band::kTrunk);
  EXPECT_EQ(bands.band_of(28), Band::kTrunk);
  EXPECT_EQ(bands.band_of(29), Band::kCrown);
  EXPECT_EQ(bands.band_of(36), Band::kCrown);
  EXPECT_STREQ(band_name(Band::kRoot), "root");
  EXPECT_STREQ(band_name(Band::kTrunk), "trunk");
  EXPECT_STREQ(band_name(Band::kCrown), "crown");
}

TEST(DotExport, TreeDotWellFormed) {
  const CpmResult r = run_cpm(overlapping_cliques(5, 5, 3));
  const CommunityTree tree = CommunityTree::build(r);
  std::ostringstream os;
  write_tree_dot(os, tree);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph community_tree {"), std::string::npos);
  EXPECT_NE(dot.find("style=filled"), std::string::npos);  // main nodes
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, MinKShownFilters) {
  const CpmResult r = run_cpm(overlapping_cliques(5, 5, 3));
  const CommunityTree tree = CommunityTree::build(r);
  std::ostringstream os;
  write_tree_dot(os, tree, 5);
  const std::string dot = os.str();
  EXPECT_EQ(dot.find("k4id"), std::string::npos);
  EXPECT_NE(dot.find("k5id"), std::string::npos);
}

}  // namespace
}  // namespace kcc
