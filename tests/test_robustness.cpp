#include "analysis/robustness.h"

#include <gtest/gtest.h>

#include "synth/as_topology.h"
#include "test_helpers.h"

namespace kcc {
namespace {

TEST(Robustness, InvalidOptionsThrow) {
  const Graph g = testing::random_graph(30, 0.2, 1);
  RobustnessOptions options;
  options.fractions = {0.0};
  EXPECT_THROW(community_robustness(g, options), Error);
  options.fractions = {1.0};
  EXPECT_THROW(community_robustness(g, options), Error);
  EXPECT_THROW(community_robustness(Graph{}, RobustnessOptions{}), Error);
}

TEST(Robustness, PointsMatchFractions) {
  const Graph g = testing::random_graph(100, 0.1, 2);
  RobustnessOptions options;
  options.fractions = {0.05, 0.20};
  const auto points = community_robustness(g, options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].removed_fraction, 0.05);
  EXPECT_EQ(points[0].nodes_left, 95u);
  EXPECT_EQ(points[1].nodes_left, 80u);
  EXPECT_GE(points[0].edges_left, points[1].edges_left);
}

TEST(Robustness, TargetedRemovesHighDegreeFirst) {
  // Star + clique: removing 1 node targeted kills the star hub.
  GraphBuilder b;
  for (NodeId leaf = 1; leaf <= 20; ++leaf) b.add_edge(0, leaf);
  for (NodeId i = 21; i < 25; ++i) {
    for (NodeId j = i + 1; j < 25; ++j) b.add_edge(i, j);
  }
  b.add_edge(20, 21);  // connect components
  const Graph g = b.build();
  RobustnessOptions options;
  options.fractions = {0.04};  // removes exactly 1 node: the hub (degree 20)
  const auto points = community_robustness(g, options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].edges_left, g.num_edges() - 20);
}

TEST(Robustness, TargetedHurtsMoreThanRandom) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  const Graph& g = eco.topology.graph;
  RobustnessOptions targeted;
  targeted.policy = RemovalPolicy::kTargetedByDegree;
  targeted.fractions = {0.05};
  RobustnessOptions random;
  random.policy = RemovalPolicy::kRandom;
  random.fractions = {0.05};
  const auto t = community_robustness(g, targeted);
  const auto r = community_robustness(g, random);
  // Removing hubs destroys far more edges and shrinks the giant component
  // more than random failures.
  EXPECT_LT(t[0].edges_left, r[0].edges_left);
  EXPECT_LE(t[0].giant_component, r[0].giant_component);
}

TEST(Robustness, RandomPolicyDeterministicInSeed) {
  const Graph g = testing::random_graph(60, 0.15, 8);
  RobustnessOptions options;
  options.policy = RemovalPolicy::kRandom;
  options.fractions = {0.10};
  options.seed = 42;
  const auto a = community_robustness(g, options);
  const auto b = community_robustness(g, options);
  EXPECT_EQ(a[0].edges_left, b[0].edges_left);
  EXPECT_EQ(a[0].total_communities, b[0].total_communities);
}

}  // namespace
}  // namespace kcc
