#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, BasicConstruction) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Graph, DuplicateEdgesMerged) {
  const Graph g = make_graph(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, SelfLoopRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), Error);
}

TEST(Graph, NeighborsSorted) {
  const Graph g = make_graph(6, {{3, 0}, {3, 5}, {3, 1}, {3, 4}, {3, 2}});
  const auto adj = g.neighbors(3);
  ASSERT_EQ(adj.size(), 5u);
  for (std::size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1], adj[i]);
  }
}

TEST(Graph, BuilderGrowsNodes) {
  GraphBuilder b;
  b.add_edge(0, 9);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, EnsureNodesAddsIsolated) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.ensure_nodes(5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Graph, EdgesCanonicalOrder) {
  const Graph g = make_graph(4, {{2, 1}, {3, 0}, {0, 1}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(NodeId{0}, NodeId{1}));
  EXPECT_EQ(edges[1], std::make_pair(NodeId{0}, NodeId{3}));
  EXPECT_EQ(edges[2], std::make_pair(NodeId{1}, NodeId{2}));
}

TEST(Graph, DensityOfCompleteGraph) {
  EXPECT_DOUBLE_EQ(complete_graph(5).density(), 1.0);
  EXPECT_DOUBLE_EQ(make_graph(4, {{0, 1}}).density(), 1.0 / 6.0);
}

TEST(Graph, MaxDegree) {
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, FromEdgesMatchesBuilder) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {2, 1}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  const Graph g = make_graph(2, {{0, 1}});
  EXPECT_FALSE(g.has_edge(0, 7));
  EXPECT_FALSE(g.has_edge(7, 0));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Graph, LargeStarDegrees) {
  GraphBuilder b;
  for (NodeId i = 1; i <= 1000; ++i) b.add_edge(0, i);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 1000u);
  EXPECT_EQ(g.max_degree(), 1000u);
  EXPECT_EQ(g.num_edges(), 1000u);
}

}  // namespace
}  // namespace kcc
