// Property tests for cpm::Engine option validation and edge-case behavior:
// every engine must agree on what an empty k range, an out-of-range max_k,
// an empty graph or a single edge *means* — not just on big healthy inputs.
//
// The engine axis is generated from cpm::engine_registry(), so a newly
// registered backend (including approximate ones) is held to the same
// edge-case contract automatically. Digest-identity checks are restricted
// to exact engines: approximate results carry a different exactness header
// and are compared by similarity (cpm/compare.h) instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "cpm/engine.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

std::vector<std::string> all_engines() {
  std::vector<std::string> names;
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    names.push_back(info.name);
  }
  return names;
}

std::vector<std::string> exact_engines() {
  std::vector<std::string> names;
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    if (info.caps.exact) names.push_back(info.name);
  }
  return names;
}

cpm::Result run(const std::string& engine, const Graph& g,
                std::size_t min_k = 2, std::size_t max_k = 0) {
  cpm::Options options;
  options.engine = engine;
  options.min_k = min_k;
  options.max_k = max_k;
  return cpm::Engine(options).run(g);
}

TEST(EngineOptions, RegistryListsTheBuiltins) {
  const std::vector<std::string> names = all_engines();
  for (const char* expected :
       {"sweep", "stream", "per_k", "almost_exact", "reference"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(cpm::find_engine("bogus"), nullptr);
  EXPECT_THROW(cpm::engine_info("bogus"), Error);
  cpm::Options options;
  options.engine = "bogus";
  EXPECT_THROW(cpm::Engine{options}, Error);
}

TEST(EngineOptions, MinKBelowTwoRejectedByEveryEngine) {
  for (const std::string& engine : all_engines()) {
    cpm::Options options;
    options.engine = engine;
    options.min_k = 1;
    EXPECT_THROW(cpm::Engine{options}, Error) << engine;
    options.min_k = 0;
    EXPECT_THROW(cpm::Engine{options}, Error) << engine;
  }
}

TEST(EngineOptions, MinCliqueSizeBelowTwoRejectedByEveryEngine) {
  for (const std::string& engine : all_engines()) {
    cpm::Options options;
    options.engine = engine;
    options.min_clique_size = 1;
    EXPECT_THROW(cpm::Engine{options}, Error) << engine;
  }
}

TEST(EngineOptions, MinKAboveMaxKYieldsEmptyResultEverywhere) {
  const Graph g = complete_graph(6);
  for (const std::string& engine : all_engines()) {
    const cpm::Result result = run(engine, g, /*min_k=*/5, /*max_k=*/3);
    EXPECT_LT(result.cpm.max_k, result.cpm.min_k) << engine;
    EXPECT_TRUE(result.cpm.by_k.empty()) << engine;
    EXPECT_FALSE(result.has_tree) << engine;
  }
}

TEST(EngineOptions, MaxKAboveLargestCliqueClampsConsistently) {
  // K5 plus a pendant edge: the largest clique is 5, so max_k=50 must clamp
  // to 5 on every engine (the reference engine stops at the first empty k).
  Graph g = make_graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3},
                           {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5}});
  for (const std::string& engine : all_engines()) {
    const cpm::Result result = run(engine, g, 2, 50);
    EXPECT_EQ(result.cpm.min_k, 2u) << engine;
    EXPECT_EQ(result.cpm.max_k, 5u) << engine;
    ASSERT_TRUE(result.cpm.has_k(5)) << engine;
    EXPECT_EQ(result.cpm.at(5).count(), 1u) << engine;
    EXPECT_EQ(result.cpm.at(5).communities[0].nodes,
              (NodeSet{0, 1, 2, 3, 4}))
        << engine;
  }
}

TEST(EngineOptions, MinKAboveLargestCliqueYieldsEmptyResultEverywhere) {
  const Graph g = complete_graph(4);
  for (const std::string& engine : all_engines()) {
    const cpm::Result result = run(engine, g, /*min_k=*/9);
    EXPECT_LT(result.cpm.max_k, result.cpm.min_k) << engine;
    EXPECT_TRUE(result.cpm.by_k.empty()) << engine;
    EXPECT_FALSE(result.has_tree) << engine;
  }
}

TEST(EngineOptions, EmptyGraphYieldsEmptyResultEverywhere) {
  const Graph empty;
  for (const std::string& engine : all_engines()) {
    const cpm::Result result = run(engine, empty);
    EXPECT_TRUE(result.cpm.by_k.empty()) << engine;
    EXPECT_LT(result.cpm.max_k, result.cpm.min_k) << engine;
    EXPECT_FALSE(result.has_tree) << engine;
  }
}

TEST(EngineOptions, SingleEdgeAgreesAcrossEngines) {
  const Graph g = make_graph(2, {{0, 1}});
  for (const std::string& engine : all_engines()) {
    const cpm::Result result = run(engine, g);
    EXPECT_EQ(result.cpm.min_k, 2u) << engine;
    EXPECT_EQ(result.cpm.max_k, 2u) << engine;
    ASSERT_EQ(result.cpm.at(2).count(), 1u) << engine;
    EXPECT_EQ(result.cpm.at(2).communities[0].nodes, (NodeSet{0, 1}))
        << engine;
    ASSERT_TRUE(result.has_tree) << engine;
    EXPECT_EQ(result.tree.nodes().size(), 1u) << engine;
  }
  // And byte-for-byte among the exact engines, through the canonical
  // node-set projection (the exactness header keeps approximate results out
  // of digest comparisons even when the node sets coincide).
  const cpm::CanonicalOptions nodes_only{false, false, false};
  const std::uint64_t baseline =
      cpm::canonical_digest(run("per_k", g), nodes_only);
  for (const std::string& engine : exact_engines()) {
    EXPECT_EQ(cpm::canonical_digest(run(engine, g), nodes_only), baseline)
        << engine;
  }
}

TEST(EngineOptions, RestrictedRangeIsARestrictionOfTheFullRun) {
  // Communities at k must not depend on the requested [min_k, max_k]
  // window; they are intrinsic to the graph. Exact engines only: the
  // almost_exact single-pass percolation carries union-find state down from
  // higher levels, so its window is an approximation of the full run, not a
  // projection of it (the gap is bounded by check::differential instead).
  const Graph g = testing::overlapping_cliques(5, 5, 3);
  for (const std::string& engine : exact_engines()) {
    const cpm::Result full = run(engine, g);
    const cpm::Result window = run(engine, g, 3, 4);
    ASSERT_EQ(window.cpm.min_k, 3u) << engine;
    ASSERT_EQ(window.cpm.max_k, 4u) << engine;
    for (std::size_t k = 3; k <= 4; ++k) {
      ASSERT_EQ(window.cpm.at(k).count(), full.cpm.at(k).count())
          << engine << " k=" << k;
      for (CommunityId id = 0; id < window.cpm.at(k).count(); ++id) {
        EXPECT_EQ(window.cpm.at(k).communities[id].nodes,
                  full.cpm.at(k).communities[id].nodes)
            << engine << " k=" << k;
      }
    }
  }
}

TEST(EngineOptions, CliqueBackendParsedFromCli) {
  const char* argv[] = {"prog", "--engine=sweep", "--clique-backend=bitset"};
  const CliArgs args(3, argv, cpm::engine_cli_flags());
  const cpm::Options options = cpm::options_from_cli(args);
  EXPECT_EQ(options.clique_backend, clique::Backend::kBitset);

  const char* dflt[] = {"prog"};
  EXPECT_EQ(cpm::options_from_cli(CliArgs(1, dflt, cpm::engine_cli_flags()))
                .clique_backend,
            clique::Backend::kAuto);

  const char* bad[] = {"prog", "--clique-backend=dense"};
  EXPECT_THROW(
      cpm::options_from_cli(CliArgs(2, bad, cpm::engine_cli_flags())), Error);
}

TEST(EngineOptions, CliqueBackendDigestInvariantAcrossEngines) {
  // The backend knob must never change any engine's output. Within one
  // engine the *full* digest (clique table and tree included) must be
  // backend-independent — approximate engines included; across the exact
  // engines the canonical node-set projection must agree too (the reference
  // engine has no clique table of its own).
  const Graph g = testing::overlapping_cliques(6, 5, 3);
  const cpm::CanonicalOptions nodes_only{false, false, false};
  std::uint64_t cross_engine_baseline = 0;
  bool have_baseline = false;
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    std::uint64_t full_baseline = 0;
    bool have_full = false;
    for (clique::Backend backend :
         {clique::Backend::kAuto, clique::Backend::kSparse,
          clique::Backend::kBitset}) {
      cpm::Options options;
      options.engine = info.name;
      options.clique_backend = backend;
      const cpm::Result result = cpm::Engine(options).run(g);
      const std::uint64_t full = cpm::canonical_digest(result);
      if (!have_full) {
        full_baseline = full;
        have_full = true;
      }
      EXPECT_EQ(full, full_baseline)
          << info.name << " / " << clique::backend_name(backend);
      if (!info.caps.exact) continue;
      const std::uint64_t nodes = cpm::canonical_digest(result, nodes_only);
      if (!have_baseline) {
        cross_engine_baseline = nodes;
        have_baseline = true;
      }
      EXPECT_EQ(nodes, cross_engine_baseline)
          << info.name << " / " << clique::backend_name(backend);
    }
  }
}

}  // namespace
}  // namespace kcc
