// Property tests for cpm::Engine option validation and edge-case behavior:
// every engine must agree on what an empty k range, an out-of-range max_k,
// an empty graph or a single edge *means* — not just on big healthy inputs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "cpm/engine.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

const std::vector<cpm::EngineKind> kAllEngines{
    cpm::EngineKind::kSweep, cpm::EngineKind::kStream, cpm::EngineKind::kPerK,
    cpm::EngineKind::kReference};

cpm::Result run(cpm::EngineKind kind, const Graph& g, std::size_t min_k = 2,
                std::size_t max_k = 0) {
  cpm::Options options;
  options.engine = kind;
  options.min_k = min_k;
  options.max_k = max_k;
  return cpm::Engine(options).run(g);
}

TEST(EngineOptions, MinKBelowTwoRejectedByEveryEngine) {
  for (cpm::EngineKind kind : kAllEngines) {
    cpm::Options options;
    options.engine = kind;
    options.min_k = 1;
    EXPECT_THROW(cpm::Engine{options}, Error) << cpm::engine_name(kind);
    options.min_k = 0;
    EXPECT_THROW(cpm::Engine{options}, Error) << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, MinCliqueSizeBelowTwoRejectedByEveryEngine) {
  for (cpm::EngineKind kind : kAllEngines) {
    cpm::Options options;
    options.engine = kind;
    options.min_clique_size = 1;
    EXPECT_THROW(cpm::Engine{options}, Error) << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, MinKAboveMaxKYieldsEmptyResultEverywhere) {
  const Graph g = complete_graph(6);
  for (cpm::EngineKind kind : kAllEngines) {
    const cpm::Result result = run(kind, g, /*min_k=*/5, /*max_k=*/3);
    EXPECT_LT(result.cpm.max_k, result.cpm.min_k) << cpm::engine_name(kind);
    EXPECT_TRUE(result.cpm.by_k.empty()) << cpm::engine_name(kind);
    EXPECT_FALSE(result.has_tree) << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, MaxKAboveLargestCliqueClampsConsistently) {
  // K5 plus a pendant edge: the largest clique is 5, so max_k=50 must clamp
  // to 5 on every engine (the reference engine stops at the first empty k).
  Graph g = make_graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3},
                           {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5}});
  for (cpm::EngineKind kind : kAllEngines) {
    const cpm::Result result = run(kind, g, 2, 50);
    EXPECT_EQ(result.cpm.min_k, 2u) << cpm::engine_name(kind);
    EXPECT_EQ(result.cpm.max_k, 5u) << cpm::engine_name(kind);
    ASSERT_TRUE(result.cpm.has_k(5)) << cpm::engine_name(kind);
    EXPECT_EQ(result.cpm.at(5).count(), 1u) << cpm::engine_name(kind);
    EXPECT_EQ(result.cpm.at(5).communities[0].nodes,
              (NodeSet{0, 1, 2, 3, 4}))
        << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, MinKAboveLargestCliqueYieldsEmptyResultEverywhere) {
  const Graph g = complete_graph(4);
  for (cpm::EngineKind kind : kAllEngines) {
    const cpm::Result result = run(kind, g, /*min_k=*/9);
    EXPECT_LT(result.cpm.max_k, result.cpm.min_k) << cpm::engine_name(kind);
    EXPECT_TRUE(result.cpm.by_k.empty()) << cpm::engine_name(kind);
    EXPECT_FALSE(result.has_tree) << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, EmptyGraphYieldsEmptyResultEverywhere) {
  const Graph empty;
  for (cpm::EngineKind kind : kAllEngines) {
    const cpm::Result result = run(kind, empty);
    EXPECT_TRUE(result.cpm.by_k.empty()) << cpm::engine_name(kind);
    EXPECT_LT(result.cpm.max_k, result.cpm.min_k) << cpm::engine_name(kind);
    EXPECT_FALSE(result.has_tree) << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, SingleEdgeAgreesAcrossEngines) {
  const Graph g = make_graph(2, {{0, 1}});
  for (cpm::EngineKind kind : kAllEngines) {
    const cpm::Result result = run(kind, g);
    const std::string label = cpm::engine_name(kind);
    EXPECT_EQ(result.cpm.min_k, 2u) << label;
    EXPECT_EQ(result.cpm.max_k, 2u) << label;
    ASSERT_EQ(result.cpm.at(2).count(), 1u) << label;
    EXPECT_EQ(result.cpm.at(2).communities[0].nodes, (NodeSet{0, 1})) << label;
    ASSERT_TRUE(result.has_tree) << label;
    EXPECT_EQ(result.tree.nodes().size(), 1u) << label;
  }
  // And byte-for-byte, through the canonical node-set projection.
  const cpm::CanonicalOptions nodes_only{false, false, false};
  const std::uint64_t baseline =
      cpm::canonical_digest(run(cpm::EngineKind::kPerK, g), nodes_only);
  for (cpm::EngineKind kind : kAllEngines) {
    EXPECT_EQ(cpm::canonical_digest(run(kind, g), nodes_only), baseline)
        << cpm::engine_name(kind);
  }
}

TEST(EngineOptions, RestrictedRangeIsARestrictionOfTheFullRun) {
  // Communities at k must not depend on the requested [min_k, max_k]
  // window; they are intrinsic to the graph.
  const Graph g = testing::overlapping_cliques(5, 5, 3);
  for (cpm::EngineKind kind : kAllEngines) {
    const cpm::Result full = run(kind, g);
    const cpm::Result window = run(kind, g, 3, 4);
    const std::string label = cpm::engine_name(kind);
    ASSERT_EQ(window.cpm.min_k, 3u) << label;
    ASSERT_EQ(window.cpm.max_k, 4u) << label;
    for (std::size_t k = 3; k <= 4; ++k) {
      ASSERT_EQ(window.cpm.at(k).count(), full.cpm.at(k).count())
          << label << " k=" << k;
      for (CommunityId id = 0; id < window.cpm.at(k).count(); ++id) {
        EXPECT_EQ(window.cpm.at(k).communities[id].nodes,
                  full.cpm.at(k).communities[id].nodes)
            << label << " k=" << k;
      }
    }
  }
}

TEST(EngineOptions, CliqueBackendParsedFromCli) {
  const char* argv[] = {"prog", "--engine=sweep", "--clique-backend=bitset"};
  const CliArgs args(3, argv, cpm::engine_cli_flags());
  const cpm::Options options = cpm::options_from_cli(args);
  EXPECT_EQ(options.clique_backend, clique::Backend::kBitset);

  const char* dflt[] = {"prog"};
  EXPECT_EQ(cpm::options_from_cli(CliArgs(1, dflt, cpm::engine_cli_flags()))
                .clique_backend,
            clique::Backend::kAuto);

  const char* bad[] = {"prog", "--clique-backend=dense"};
  EXPECT_THROW(
      cpm::options_from_cli(CliArgs(2, bad, cpm::engine_cli_flags())), Error);
}

TEST(EngineOptions, CliqueBackendDigestInvariantAcrossEngines) {
  // The backend knob must never change any engine's output. Within one
  // engine the *full* digest (clique table and tree included) must be
  // backend-independent; across engines the canonical node-set projection
  // must agree too (the reference engine has no clique table of its own).
  const Graph g = testing::overlapping_cliques(6, 5, 3);
  const cpm::CanonicalOptions nodes_only{false, false, false};
  std::uint64_t cross_engine_baseline = 0;
  bool have_baseline = false;
  for (cpm::EngineKind kind : kAllEngines) {
    std::uint64_t full_baseline = 0;
    bool have_full = false;
    for (clique::Backend backend :
         {clique::Backend::kAuto, clique::Backend::kSparse,
          clique::Backend::kBitset}) {
      cpm::Options options;
      options.engine = kind;
      options.clique_backend = backend;
      const cpm::Result result = cpm::Engine(options).run(g);
      const std::uint64_t full = cpm::canonical_digest(result);
      if (!have_full) {
        full_baseline = full;
        have_full = true;
      }
      EXPECT_EQ(full, full_baseline)
          << cpm::engine_name(kind) << " / " << clique::backend_name(backend);
      const std::uint64_t nodes = cpm::canonical_digest(result, nodes_only);
      if (!have_baseline) {
        cross_engine_baseline = nodes;
        have_baseline = true;
      }
      EXPECT_EQ(nodes, cross_engine_baseline)
          << cpm::engine_name(kind) << " / " << clique::backend_name(backend);
    }
  }
}

}  // namespace
}  // namespace kcc
