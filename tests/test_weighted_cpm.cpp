#include "cpm/weighted_cpm.h"

#include <gtest/gtest.h>

#include "cpm/cpm.h"
#include "common/set_ops.h"
#include "cpm/reference_cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::overlapping_cliques;
using testing::random_graph;

TEST(EdgeWeights, UniformAndLookup) {
  const Graph g = complete_graph(4);
  const EdgeWeights w = EdgeWeights::uniform(g);
  EXPECT_EQ(w.edge_count(), 6u);
  EXPECT_DOUBLE_EQ(w.weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.weight(3, 2), 1.0);  // orientation-insensitive
  EXPECT_DOUBLE_EQ(w.min_weight(), 1.0);
  EXPECT_DOUBLE_EQ(w.max_weight(), 1.0);
  EXPECT_THROW(w.weight(0, 0), Error);
}

TEST(EdgeWeights, RejectsBadInput) {
  const Graph g = complete_graph(3);
  EXPECT_THROW(EdgeWeights(g, {1.0}), Error);             // wrong count
  EXPECT_THROW(EdgeWeights(g, {1.0, 0.0, 1.0}), Error);   // non-positive
}

TEST(EdgeWeights, FromIxps) {
  const Graph g = complete_graph(4);
  std::vector<Ixp> ixps;
  ixps.push_back({"A", "DE", {0, 1, 2}});
  ixps.push_back({"B", "DE", {0, 1}});
  const IxpDataset dataset(std::move(ixps));
  const EdgeWeights w = weights_from_ixps(g, dataset);
  EXPECT_DOUBLE_EQ(w.weight(0, 1), 3.0);  // shares A and B
  EXPECT_DOUBLE_EQ(w.weight(0, 2), 2.0);  // shares A
  EXPECT_DOUBLE_EQ(w.weight(0, 3), 1.0);  // no shared IXP
}

TEST(CliqueIntensity, GeometricMean) {
  const Graph g = complete_graph(3);
  const EdgeWeights w(g, {1.0, 4.0, 2.0});  // edges (0,1), (0,2), (1,2)
  EXPECT_NEAR(clique_intensity(g, w, {0, 1, 2}), std::cbrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(clique_intensity(g, w, {0, 2}), 4.0);
}

TEST(CliqueIntensity, NonCliqueThrows) {
  const Graph g = testing::make_graph(3, {{0, 1}, {1, 2}});
  const EdgeWeights w = EdgeWeights::uniform(g);
  EXPECT_THROW(clique_intensity(g, w, {0, 1, 2}), Error);
  EXPECT_THROW(clique_intensity(g, w, {0}), Error);
}

TEST(WeightedCpm, ZeroThresholdMatchesUnweighted) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_graph(18, 0.4, seed);
    const EdgeWeights w = EdgeWeights::uniform(g);
    for (std::size_t k : {3u, 4u}) {
      WeightedCpmOptions options;
      options.k = k;
      options.intensity_threshold = 0.0;
      EXPECT_EQ(weighted_k_clique_communities(g, w, options),
                reference_k_clique_communities(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(WeightedCpm, ThresholdSplitsWeakSeam) {
  // Two triangles joined by a shared edge of low weight.
  // Nodes: {0,1,2} strong, {1,2,3} with weak links to 3.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const Graph g = b.build();
  // Edge order: (0,1), (0,2), (1,2), (1,3), (2,3).
  const EdgeWeights w(g, {8.0, 8.0, 8.0, 1.0, 1.0});

  WeightedCpmOptions options;
  options.k = 3;
  options.intensity_threshold = 0.0;
  EXPECT_EQ(weighted_k_clique_communities(g, w, options).size(), 1u);

  // Triangle {1,2,3} intensity = (8*1*1)^(1/3) = 2; {0,1,2} = 8.
  options.intensity_threshold = 4.0;
  const auto strong = weighted_k_clique_communities(g, w, options);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0], (NodeSet{0, 1, 2}));
}

TEST(WeightedCpm, HighThresholdRemovesEverything) {
  const Graph g = complete_graph(5);
  const EdgeWeights w = EdgeWeights::uniform(g);
  WeightedCpmOptions options;
  options.k = 3;
  options.intensity_threshold = 2.0;
  EXPECT_TRUE(weighted_k_clique_communities(g, w, options).empty());
}

TEST(WeightedCpm, CliqueBudgetEnforced) {
  const Graph g = complete_graph(16);
  const EdgeWeights w = EdgeWeights::uniform(g);
  WeightedCpmOptions options;
  options.k = 8;
  options.max_cliques = 100;  // C(16,8) = 12870 >> 100
  EXPECT_THROW(weighted_k_clique_communities(g, w, options), Error);
}

// Property: raising the intensity threshold only removes cliques, so every
// community at a higher threshold is contained in some community at a lower
// threshold (threshold nesting — the weighted analogue of Theorem 1).
TEST(WeightedCpm, ThresholdNestingProperty) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(20, 0.4, seed);
    // Pseudo-random positive weights derived from the seed.
    Rng rng(seed + 55);
    std::vector<double> raw;
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      raw.push_back(0.5 + rng.next_double() * 4.0);
    }
    const EdgeWeights w(g, std::move(raw));
    WeightedCpmOptions low, high;
    low.k = 3;
    high.k = 3;
    low.intensity_threshold = 1.0;
    high.intensity_threshold = 2.0;
    const auto coarse = weighted_k_clique_communities(g, w, low);
    const auto fine = weighted_k_clique_communities(g, w, high);
    for (const NodeSet& community : fine) {
      std::size_t containing = 0;
      for (const NodeSet& parent : coarse) {
        if (is_subset(community, parent)) ++containing;
      }
      EXPECT_GE(containing, 1u) << "seed " << seed;
    }
  }
}

TEST(WeightedCpm, IntensitySweepMonotone) {
  const Graph g = overlapping_cliques(5, 5, 3);
  // Give the first clique's edges weight 4, the rest weight 1.
  auto edges = g.edges();
  std::vector<double> weights;
  for (const auto& [u, v] : edges) {
    weights.push_back(u < 5 && v < 5 ? 4.0 : 1.0);
  }
  const EdgeWeights w(g, std::move(weights));
  const auto sweep = intensity_sweep(g, w, 4, {0.0, 1.5, 10.0});
  ASSERT_EQ(sweep.size(), 3u);
  // Clique count shrinks as the threshold rises.
  EXPECT_GE(sweep[0].surviving_cliques, sweep[1].surviving_cliques);
  EXPECT_GE(sweep[1].surviving_cliques, sweep[2].surviving_cliques);
  EXPECT_EQ(sweep[2].community_count, 0u);
  EXPECT_GT(sweep[0].community_count, 0u);
}

}  // namespace
}  // namespace kcc
