#include "baselines/louvain.h"

#include <gtest/gtest.h>

#include "metrics/modularity.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;
using testing::random_graph;

TEST(Modularity, SingleCommunityIsZero) {
  const Graph g = complete_graph(5);
  const std::vector<std::uint32_t> all_one(5, 0);
  EXPECT_NEAR(modularity(g, all_one), 0.0, 1e-12);
}

TEST(Modularity, PerfectTwoCliqueSplit) {
  // Two K4s joined by one edge: the natural split has high modularity.
  GraphBuilder b;
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  for (NodeId i = 4; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) b.add_edge(i, j);
  }
  b.add_edge(3, 4);
  const Graph g = b.build();
  std::vector<std::uint32_t> split{0, 0, 0, 0, 1, 1, 1, 1};
  const double q_split = modularity(g, split);
  const std::vector<std::uint32_t> merged(8, 0);
  EXPECT_GT(q_split, 0.3);
  EXPECT_GT(q_split, modularity(g, merged));
  // Singletons are worse than the good split.
  std::vector<std::uint32_t> singletons{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_GT(q_split, modularity(g, singletons));
}

TEST(Modularity, LabelMismatchThrows) {
  EXPECT_THROW(modularity(complete_graph(3), {0, 0}), Error);
}

TEST(Modularity, EdgelessGraph) {
  GraphBuilder b;
  b.ensure_nodes(4);
  EXPECT_DOUBLE_EQ(modularity(b.build(), {0, 1, 2, 3}), 0.0);
}

TEST(PartitionToCover, GroupsByLabel) {
  const auto cover = partition_to_cover({0, 1, 0, 2, 1});
  ASSERT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover[0], (NodeSet{0, 2}));
  EXPECT_EQ(cover[1], (NodeSet{1, 4}));
  EXPECT_EQ(cover[2], (NodeSet{3}));
}

TEST(Louvain, RecoversTwoCliques) {
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  }
  for (NodeId i = 5; i < 10; ++i) {
    for (NodeId j = i + 1; j < 10; ++j) b.add_edge(i, j);
  }
  b.add_edge(4, 5);
  const Graph g = b.build();
  const LouvainResult result = louvain_communities(g);
  EXPECT_EQ(result.community_count, 2u);
  const auto cover = partition_to_cover(result.community_of);
  EXPECT_EQ(cover[0], (NodeSet{0, 1, 2, 3, 4}));
  EXPECT_EQ(cover[1], (NodeSet{5, 6, 7, 8, 9}));
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Louvain, EdgelessGraphIsSingletons) {
  GraphBuilder b;
  b.ensure_nodes(5);
  const LouvainResult result = louvain_communities(b.build());
  EXPECT_EQ(result.community_count, 5u);
  EXPECT_DOUBLE_EQ(result.modularity, 0.0);
}

TEST(Louvain, ModularityMatchesMetric) {
  const Graph g = random_graph(60, 0.1, 4);
  const LouvainResult result = louvain_communities(g);
  EXPECT_NEAR(result.modularity, modularity(g, result.community_of), 1e-9);
}

TEST(Louvain, BeatsTrivialPartitions) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(50, 0.12, seed);
    const LouvainResult result = louvain_communities(g);
    const std::vector<std::uint32_t> merged(g.num_nodes(), 0);
    std::vector<std::uint32_t> singletons(g.num_nodes());
    for (std::uint32_t v = 0; v < g.num_nodes(); ++v) singletons[v] = v;
    EXPECT_GE(result.modularity, modularity(g, merged) - 1e-12);
    EXPECT_GE(result.modularity, modularity(g, singletons) - 1e-12);
  }
}

TEST(Louvain, Deterministic) {
  const Graph g = random_graph(80, 0.08, 9);
  const LouvainResult a = louvain_communities(g);
  const LouvainResult b = louvain_communities(g);
  EXPECT_EQ(a.community_of, b.community_of);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Louvain, PartitionCoversEveryNodeOnce) {
  const Graph g = random_graph(70, 0.1, 2);
  const LouvainResult result = louvain_communities(g);
  ASSERT_EQ(result.community_of.size(), g.num_nodes());
  const auto cover = partition_to_cover(result.community_of);
  std::size_t total = 0;
  for (const auto& c : cover) total += c.size();
  EXPECT_EQ(total, g.num_nodes());
}

}  // namespace
}  // namespace kcc
