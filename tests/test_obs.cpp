// Observability layer: metrics registry under contention, span tracing and
// Chrome-trace export, log-level filtering, Timer::lap, and the pipeline
// smoke check that instrumentation actually fires end to end.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "synth/params.h"

namespace kcc {
namespace {

// ----------------------------------------------------------------- JSON
// Minimal recursive-descent JSON parser, just enough to validate the
// exporters' output by parsing it back.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw Error("json: missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw Error("json: trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw Error("json: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw Error(std::string("json: expected '") + c + "' at " +
                  std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        return parse_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      v.object[key] = parse_value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw Error("json: bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw Error("json: bad \\u escape");
            pos_ += 4;
            c = '?';
            break;
          default:
            c = esc;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) throw Error("json: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = parse_string();
    return v;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw Error("json: bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) throw Error("json: bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw Error("json: bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

// ---------------------------------------------------------------- Timer
TEST(TimerLap, MeasuresSinceLastLap) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  const double lap1 = t.lap();
  EXPECT_GE(lap1, 0.008);
  // seconds() is cumulative and unaffected by lap().
  EXPECT_GE(t.seconds(), lap1 * 0.9);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double lap2 = t.lap();
  EXPECT_GE(lap2, 0.003);
  EXPECT_LT(lap2, lap1 + 0.2);
  EXPECT_GE(t.seconds(), (lap1 + lap2) * 0.9);
}

TEST(TimerLap, RestartResetsLapOrigin) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  t.restart();
  const double lap = t.lap();
  EXPECT_LT(lap, 0.008);  // lap origin moved with restart
}

// -------------------------------------------------------------- Metrics
TEST(Metrics, CounterGaugeBasics) {
  obs::Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(7);
  g.add(3);
  g.add(-5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max_value(), 10);
}

TEST(Metrics, HistogramBucketBoundaries) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.0);  // boundary values land in the bucket they bound
  h.observe(1.5);
  h.observe(100.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);  // +Inf overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
}

TEST(Metrics, BoundsHelpers) {
  const auto exp = obs::Histogram::exponential_bounds(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1, 2, 4, 8}));
  const auto lin = obs::Histogram::linear_bounds(2.0, 1.0, 3);
  EXPECT_EQ(lin, (std::vector<double>{2, 3, 4}));
  EXPECT_THROW(obs::Histogram::exponential_bounds(0.0, 2.0, 4), Error);
  EXPECT_THROW(obs::Histogram({}), Error);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
}

TEST(Metrics, RegistryIsIdempotentAndStable) {
  auto& reg = obs::metrics();
  obs::Counter& a = reg.counter("test_registry_counter");
  obs::Counter& b = reg.counter("test_registry_counter");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 = reg.histogram("test_registry_hist", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("test_registry_hist", {9.0});
  EXPECT_EQ(&h1, &h2);  // first registration fixes the bounds
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Metrics, ConcurrentHammering) {
  auto& reg = obs::metrics();
  obs::Counter& counter = reg.counter("test_hammer_counter");
  obs::Gauge& gauge = reg.gauge("test_hammer_gauge");
  obs::Histogram& hist =
      reg.histogram("test_hammer_hist", {0.25, 0.5, 0.75, 1.0});
  counter.reset();
  gauge.reset();
  hist.reset();

  constexpr int kThreads = 4;
  constexpr int kIterations = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter.inc();
        gauge.add(1);
        gauge.add(-1);
        hist.observe(static_cast<double>((i + t) % 5) / 4.0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIterations);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : hist.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(Metrics, JsonExportParsesBack) {
  auto& reg = obs::metrics();
  reg.counter("test_export_counter").reset();
  reg.counter("test_export_counter").inc(13);
  reg.histogram("test_export_hist", {1.0, 10.0}).observe(3.0);

  std::ostringstream out;
  reg.write_json(out);
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("counters").at("test_export_counter").number, 13.0);
  EXPECT_TRUE(doc.at("gauges").has("process_peak_rss_bytes"));
  const JsonValue& hist = doc.at("histograms").at("test_export_hist");
  EXPECT_GE(hist.at("count").number, 1.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 3u);
  EXPECT_EQ(hist.at("buckets").array.back().at("le").string, "+Inf");
}

TEST(Metrics, PrometheusExportShape) {
  auto& reg = obs::metrics();
  reg.counter("test_prom_counter").reset();
  reg.counter("test_prom_counter").inc(7);
  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("\ntest_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("process_peak_rss_bytes"), std::string::npos);
}

#if defined(__linux__)
TEST(Metrics, PeakRssIsNonzeroOnLinux) {
  EXPECT_GT(obs::peak_rss_bytes(), 0u);
}
#endif

// -------------------------------------------------------------- Logging
TEST(Log, LevelFiltering) {
  const obs::LogLevel saved = obs::log_level();
  std::ostringstream sink;
  obs::set_log_sink(&sink);
  obs::set_log_level(obs::LogLevel::kInfo);

  KCC_LOG(kError) << "error-line";
  KCC_LOG(kInfo) << "info-line " << 42;
  KCC_LOG(kDebug) << "debug-line";

  obs::set_log_level(obs::LogLevel::kOff);
  KCC_LOG(kError) << "suppressed-line";

  obs::set_log_sink(nullptr);
  obs::set_log_level(saved);

  const std::string text = sink.str();
  EXPECT_NE(text.find("error-line"), std::string::npos);
  EXPECT_NE(text.find("info-line 42"), std::string::npos);
  EXPECT_NE(text.find("info "), std::string::npos);  // level tag in prefix
  EXPECT_EQ(text.find("debug-line"), std::string::npos);
  EXPECT_EQ(text.find("suppressed-line"), std::string::npos);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::kOff);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("trace"), obs::LogLevel::kTrace);
  EXPECT_THROW(obs::parse_log_level("loud"), Error);
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kDebug), "debug");
}

// -------------------------------------------------------------- Tracing
TEST(Trace, DisabledTracerRecordsNothing) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  {
    KCC_SPAN("should_not_appear");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, NestedSpansProduceWellFormedChromeTrace) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  {
    KCC_SPAN("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      KCC_SPAN("inner_a");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      obs::ScopedSpan dynamic(std::string("inner_k=") + std::to_string(7));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  tracer.set_enabled(false);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = parse_json(out.str());
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);

  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GT(e.at("tid").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    by_name[e.at("name").string] = &e;
  }
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner_a"));
  ASSERT_TRUE(by_name.count("inner_k=7"));

  // Nesting: children start no earlier than the parent and end within it.
  const JsonValue& outer = *by_name["outer"];
  const double outer_start = outer.at("ts").number;
  const double outer_end = outer_start + outer.at("dur").number;
  for (const char* child : {"inner_a", "inner_k=7"}) {
    const JsonValue& e = *by_name[child];
    EXPECT_GE(e.at("ts").number, outer_start);
    EXPECT_LE(e.at("ts").number + e.at("dur").number, outer_end);
  }
  tracer.clear();
}

TEST(Trace, SpansFromMultipleThreadsGetDistinctTids) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  std::thread worker([] { KCC_SPAN("worker_span"); });
  worker.join();
  {
    KCC_SPAN("main_span");
  }
  tracer.set_enabled(false);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = parse_json(out.str());
  std::map<std::string, double> tid_of;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    tid_of[e.at("name").string] = e.at("tid").number;
  }
  ASSERT_TRUE(tid_of.count("worker_span"));
  ASSERT_TRUE(tid_of.count("main_span"));
  EXPECT_NE(tid_of["worker_span"], tid_of["main_span"]);
  tracer.clear();
}

// ----------------------------------------------------- pipeline smoke
TEST(ObsPipelineSmoke, InstrumentationFiresEndToEnd) {
  auto& reg = obs::metrics();
  auto& tracer = obs::Tracer::instance();
  reg.reset_all();
  tracer.clear();
  tracer.set_enabled(true);

  PipelineOptions options;
  options.synth = SynthParams::test_scale();
  const PipelineResult result = run_pipeline(options);
  tracer.set_enabled(false);
  ASSERT_GT(result.cpm.cliques.size(), 0u);

  // Counters fired.
  EXPECT_GT(reg.counter("cliques_enumerated_total").value(), 0u);
  EXPECT_GT(reg.counter("bk_subproblems_total").value(), 0u);
  EXPECT_GT(reg.counter("cpm_join_ops_total").value(), 0u);
  EXPECT_GT(reg.counter("cpm_overlap_pairs_total").value(), 0u);
  EXPECT_GT(reg.counter("cpm_communities_total").value(), 0u);
  EXPECT_GT(reg.counter("thread_pool_tasks_total").value(), 0u);

  // Histograms fired.
  EXPECT_GT(
      reg.histogram("thread_pool_task_seconds", {1.0}).count(), 0u);
  EXPECT_GT(reg.histogram("clique_size_nodes", {1.0}).count(), 0u);

  // Per-k community gauges exist for the whole percolation range.
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    EXPECT_EQ(static_cast<std::size_t>(
                  reg.gauge("cpm_communities_k" + std::to_string(k)).value()),
              result.cpm.at(k).count())
        << "k=" << k;
  }

  // One span per pipeline stage, plus per-k percolation spans.
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = parse_json(out.str());
  std::map<std::string, int> span_count;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    ++span_count[e.at("name").string];
  }
  for (const char* stage :
       {"pipeline/generate", "pipeline/analyze", "pipeline/cpm",
        "pipeline/metrics", "pipeline/profiles", "pipeline/bands",
        "pipeline/overlaps"}) {
    EXPECT_EQ(span_count[stage], 1) << stage;
  }
  EXPECT_GE(span_count["clique/parallel_enumerate"], 1);
  EXPECT_GE(span_count["cpm/overlap_join"], 1);
  // The pipeline runs the sweep engine: one snapshot span per emitted k >= 3,
  // plus the k=2 component pass and the in-pass tree assembly.
  for (const char* stage :
       {"cpm_engine/sweep", "sweep_cpm/clique_overlaps",
        "sweep_cpm/sort_overlaps", "sweep_cpm/sweep",
        "sweep_cpm/percolate_k2", "sweep_cpm/tree"}) {
    EXPECT_EQ(span_count[stage], 1) << stage;
  }
  for (std::size_t k = 3; k <= result.cpm.max_k; ++k) {
    EXPECT_EQ(span_count["sweep_cpm/emit_k=" + std::to_string(k)], 1)
        << "k=" << k;
  }
  tracer.clear();
}

// ------------------------------------------------------------ CLI flags
TEST(CliFlags, UnknownFlagIsAnError) {
  const char* argv[] = {"prog", "--thread=8"};
  EXPECT_THROW(CliArgs(2, argv, {"threads"}), Error);
  // An empty known list still accepts anything (opt-in behaviour).
  const CliArgs open(2, argv, {});
  EXPECT_EQ(open.get_int("thread", 0), 8);
}

}  // namespace
}  // namespace kcc
