#include "metrics/cover_stats.h"

#include <gtest/gtest.h>

#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::overlapping_cliques;

CommunitySet make_set(std::size_t k, std::vector<NodeSet> communities) {
  CommunitySet set;
  set.k = k;
  for (CommunityId id = 0; id < communities.size(); ++id) {
    Community c;
    c.k = k;
    c.id = id;
    c.nodes = std::move(communities[id]);
    set.communities.push_back(std::move(c));
  }
  return set;
}

TEST(CoverStats, SingleCommunity) {
  const auto set = make_set(3, {{0, 1, 2, 3}});
  const auto stats = compute_cover_stats(set, 10);
  EXPECT_EQ(stats.community_count, 1u);
  EXPECT_EQ(stats.covered_nodes, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_membership, 1.0);
  EXPECT_EQ(stats.max_membership, 1u);
  EXPECT_EQ(stats.overlapping_pairs, 0u);
  ASSERT_GT(stats.size_histogram.size(), 4u);
  EXPECT_EQ(stats.size_histogram[4], 1u);
}

TEST(CoverStats, OverlappingCommunities) {
  const auto set = make_set(3, {{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {7, 8, 9}});
  const auto stats = compute_cover_stats(set, 10);
  EXPECT_EQ(stats.covered_nodes, 10u);
  // Nodes 2 and 4 are in two communities each.
  ASSERT_GT(stats.membership_histogram.size(), 2u);
  EXPECT_EQ(stats.membership_histogram[2], 2u);
  EXPECT_EQ(stats.membership_histogram[1], 8u);
  EXPECT_EQ(stats.max_membership, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_membership, 12.0 / 10.0);
  // Overlap pairs: (0,1) share {2}, (1,2) share {4}.
  EXPECT_EQ(stats.overlapping_pairs, 2u);
  ASSERT_GT(stats.overlap_size_histogram.size(), 1u);
  EXPECT_EQ(stats.overlap_size_histogram[1], 2u);
  // Community degrees: 1, 2, 1, 0.
  EXPECT_EQ(stats.community_degree, (std::vector<std::size_t>{1, 2, 1, 0}));
  EXPECT_DOUBLE_EQ(stats.mean_community_degree, 1.0);
}

TEST(CoverStats, EmptySet) {
  const auto stats = compute_cover_stats(make_set(3, {}), 5);
  EXPECT_EQ(stats.community_count, 0u);
  EXPECT_EQ(stats.covered_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_membership, 0.0);
}

TEST(CoverStats, OutOfRangeNodeThrows) {
  const auto set = make_set(3, {{0, 99}});
  EXPECT_THROW(compute_cover_stats(set, 5), Error);
}

TEST(CoverStats, OnRealCpmOutput) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  const auto stats = compute_cover_stats(r.at(5), g.num_nodes());
  EXPECT_EQ(stats.community_count, 2u);
  EXPECT_EQ(stats.covered_nodes, 7u);
  EXPECT_EQ(stats.overlapping_pairs, 1u);
  EXPECT_EQ(stats.overlap_size_histogram[3], 1u);  // the 3 shared nodes
  EXPECT_EQ(stats.membership_histogram[2], 3u);
}

TEST(CoverFraction, Values) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  EXPECT_DOUBLE_EQ(cover_fraction(r.at(5), g.num_nodes()), 1.0);
  EXPECT_DOUBLE_EQ(cover_fraction(r.at(5), 14), 0.5);
  EXPECT_DOUBLE_EQ(cover_fraction(make_set(3, {}), 14), 0.0);
  EXPECT_DOUBLE_EQ(cover_fraction(make_set(3, {}), 0), 0.0);
}

TEST(CoverStats, CompleteGraphEveryNodeOnce) {
  const Graph g = complete_graph(8);
  const CpmResult r = run_cpm(g);
  for (std::size_t k = 2; k <= 8; ++k) {
    const auto stats = compute_cover_stats(r.at(k), 8);
    EXPECT_EQ(stats.covered_nodes, 8u);
    EXPECT_DOUBLE_EQ(stats.mean_membership, 1.0);
    EXPECT_EQ(stats.overlapping_pairs, 0u);
  }
}

}  // namespace
}  // namespace kcc
