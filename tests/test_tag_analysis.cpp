#include "data/tag_analysis.h"

#include <gtest/gtest.h>

#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

Community make_community(std::size_t k, CommunityId id, NodeSet nodes) {
  Community c;
  c.k = k;
  c.id = id;
  c.nodes = std::move(nodes);
  return c;
}

IxpDataset make_ixps() {
  std::vector<Ixp> ixps;
  ixps.push_back({"BIG", "DE", {0, 1, 2, 3, 4, 5, 6, 7}});
  ixps.push_back({"SMALL", "NZ", {2, 3, 8}});
  ixps.push_back({"EMPTYISH", "US", {9}});
  return IxpDataset(std::move(ixps));
}

GeoDataset make_geo() {
  std::vector<Country> countries{{"DE", "EU"}, {"NZ", "OC"}, {"US", "NA"}};
  std::vector<std::vector<CountryId>> locations{
      {0}, {0}, {0, 1}, {1}, {0}, {0}, {0}, {0}, {1}, {2}};
  return GeoDataset(std::move(countries), std::move(locations));
}

TEST(MaxShare, PicksLargestOverlap) {
  const auto c = make_community(3, 0, {2, 3, 8});
  const auto share = max_share_ixp(make_ixps(), c);
  ASSERT_TRUE(share.has_value());
  EXPECT_EQ(share->ixp, 1u);  // SMALL contains all three
  EXPECT_EQ(share->shared, 3u);
  EXPECT_DOUBLE_EQ(share->fraction, 1.0);
  EXPECT_TRUE(share->full_share);
}

TEST(MaxShare, PartialOverlap) {
  const auto c = make_community(3, 0, {0, 1, 8});
  const auto share = max_share_ixp(make_ixps(), c);
  ASSERT_TRUE(share.has_value());
  EXPECT_EQ(share->ixp, 0u);  // BIG shares {0,1}
  EXPECT_EQ(share->shared, 2u);
  EXPECT_FALSE(share->full_share);
}

TEST(MaxShare, NoSharedMember) {
  std::vector<Ixp> ixps;
  ixps.push_back({"X", "DE", {5}});
  const IxpDataset dataset(std::move(ixps));
  const auto c = make_community(3, 0, {1, 2});
  EXPECT_FALSE(max_share_ixp(dataset, c).has_value());
}

TEST(FullShare, ListsEveryContainingIxp) {
  const auto c = make_community(3, 0, {2, 3});
  const auto full = full_share_ixps(make_ixps(), c);
  EXPECT_EQ(full, (std::vector<IxpId>{0, 1}));  // both contain {2,3}
  const auto c2 = make_community(3, 0, {2, 3, 8});
  EXPECT_EQ(full_share_ixps(make_ixps(), c2), (std::vector<IxpId>{1}));
  const auto c3 = make_community(3, 0, {0, 8, 9});
  EXPECT_TRUE(full_share_ixps(make_ixps(), c3).empty());
}

TEST(ContainingCountries, IntersectsLocations) {
  const GeoDataset geo = make_geo();
  // Nodes 0,1,2 all have DE.
  EXPECT_EQ(containing_countries(geo, make_community(3, 0, {0, 1, 2})),
            (std::vector<CountryId>{0}));
  // Nodes 2,3 share NZ.
  EXPECT_EQ(containing_countries(geo, make_community(3, 0, {2, 3})),
            (std::vector<CountryId>{1}));
  // Nodes 3,9: NZ vs US -> none.
  EXPECT_TRUE(containing_countries(geo, make_community(3, 0, {3, 9})).empty());
}

TEST(DeriveBands, ThreeBandStructure) {
  // Full-share communities at k in {3,4,5} and {10,11}, gap at 6..9.
  std::vector<CommunityTagProfile> profiles;
  for (std::size_t k : {3u, 4u, 5u, 10u, 11u}) {
    CommunityTagProfile p;
    p.k = k;
    p.full_share = {0};
    profiles.push_back(p);
  }
  for (std::size_t k : {6u, 7u, 8u, 9u}) {
    CommunityTagProfile p;
    p.k = k;
    profiles.push_back(p);
  }
  const auto bands = derive_bands(profiles, 2, 12);
  EXPECT_EQ(bands.root_max_k, 5u);
  EXPECT_EQ(bands.trunk_max_k, 9u);
}

TEST(DeriveBands, FallbackWhenNoGap) {
  std::vector<CommunityTagProfile> profiles;
  CommunityTagProfile p;
  p.k = 4;
  p.full_share = {0};
  profiles.push_back(p);
  const BandThresholds fallback{7, 9};
  const auto bands = derive_bands(profiles, 2, 10, fallback);
  EXPECT_EQ(bands.root_max_k, 7u);
  EXPECT_EQ(bands.trunk_max_k, 9u);
}

TEST(DeriveBands, FallbackWhenNoFullShareAtAll) {
  const auto bands = derive_bands({}, 2, 10, BandThresholds{3, 6});
  EXPECT_EQ(bands.root_max_k, 3u);
  EXPECT_EQ(bands.trunk_max_k, 6u);
}

TEST(SummarizeBands, AggregatesPerBand) {
  std::vector<CommunityTagProfile> profiles;
  CommunityTagProfile root;
  root.k = 3;
  root.size = 4;
  root.full_share = {1};
  root.containing_country = {0};
  root.on_ixp_fraction = 1.0;
  profiles.push_back(root);
  CommunityTagProfile trunk;
  trunk.k = 20;
  trunk.size = 30;
  trunk.on_ixp_fraction = 0.9;
  profiles.push_back(trunk);
  CommunityTagProfile crown;
  crown.k = 30;
  crown.size = 31;
  crown.full_share = {0};
  crown.on_ixp_fraction = 1.0;
  profiles.push_back(crown);

  const auto summary = summarize_bands(profiles, BandThresholds{14, 28});
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].band, Band::kRoot);
  EXPECT_EQ(summary[0].community_count, 1u);
  EXPECT_EQ(summary[0].with_full_share_ixp, 1u);
  EXPECT_EQ(summary[0].country_contained, 1u);
  EXPECT_DOUBLE_EQ(summary[0].mean_size, 4.0);
  EXPECT_EQ(summary[1].band, Band::kTrunk);
  EXPECT_EQ(summary[1].with_full_share_ixp, 0u);
  EXPECT_EQ(summary[2].band, Band::kCrown);
  EXPECT_EQ(summary[2].community_count, 1u);
}

TEST(ProfileCommunities, EndToEndOnSmallGraph) {
  // Two 4-cliques sharing 2 nodes; IXP contains the first clique fully.
  const Graph g = testing::overlapping_cliques(4, 4, 2);
  std::vector<Ixp> ixps;
  ixps.push_back({"ONE", "DE", {0, 1, 2, 3}});
  const IxpDataset ixp_data(std::move(ixps));
  std::vector<Country> countries{{"DE", "EU"}};
  std::vector<std::vector<CountryId>> locations(g.num_nodes(), {0});
  const GeoDataset geo(std::move(countries), std::move(locations));

  const CpmResult cpm = run_cpm(g);
  const CommunityTree tree = CommunityTree::build(cpm);
  const auto profiles = profile_communities(cpm, tree, ixp_data, geo);
  EXPECT_EQ(profiles.size(), cpm.total_communities());
  std::size_t mains = 0, full_shares = 0;
  for (const auto& p : profiles) {
    mains += p.is_main ? 1 : 0;
    full_shares += p.full_share.empty() ? 0 : 1;
    // Everyone lives in DE.
    EXPECT_EQ(p.containing_country, (std::vector<CountryId>{0}));
  }
  EXPECT_EQ(mains, cpm.max_k - cpm.min_k + 1);
  EXPECT_GE(full_shares, 1u);
}

}  // namespace
}  // namespace kcc
