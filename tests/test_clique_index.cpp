#include "cpm/clique_index.h"

#include <gtest/gtest.h>

#include "clique/bron_kerbosch.h"
#include "common/set_ops.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::random_graph;

// Oracle: all-pairs overlap computation.
std::vector<CliqueOverlap> naive_overlaps(const std::vector<NodeSet>& cliques,
                                          std::size_t min_overlap) {
  std::vector<CliqueOverlap> out;
  for (CliqueId a = 0; a < cliques.size(); ++a) {
    for (CliqueId b = a + 1; b < cliques.size(); ++b) {
      const auto o = intersection_size(cliques[a], cliques[b]);
      if (o >= min_overlap) {
        out.push_back({a, b, static_cast<std::uint32_t>(o)});
      }
    }
  }
  return out;
}

bool same_overlaps(const std::vector<CliqueOverlap>& x,
                   const std::vector<CliqueOverlap>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].a != y[i].a || x[i].b != y[i].b || x[i].overlap != y[i].overlap) {
      return false;
    }
  }
  return true;
}

TEST(CliqueIndex, NodeCliqueIndexComplete) {
  const std::vector<NodeSet> cliques{{0, 1, 2}, {1, 2, 3}, {4}};
  const auto index = build_node_clique_index(cliques, 5);
  EXPECT_EQ(index[0], (std::vector<CliqueId>{0}));
  EXPECT_EQ(index[1], (std::vector<CliqueId>{0, 1}));
  EXPECT_EQ(index[2], (std::vector<CliqueId>{0, 1}));
  EXPECT_EQ(index[3], (std::vector<CliqueId>{1}));
  EXPECT_EQ(index[4], (std::vector<CliqueId>{2}));
}

TEST(CliqueIndex, SequentialMatchesNaive) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = random_graph(25, 0.35, seed);
    const auto cliques = maximal_cliques(g, 2);
    for (std::size_t min_overlap : {1u, 2u, 3u}) {
      const auto fast =
          compute_clique_overlaps_sequential(cliques, g.num_nodes(), min_overlap);
      const auto naive = naive_overlaps(cliques, min_overlap);
      EXPECT_TRUE(same_overlaps(fast, naive))
          << "seed " << seed << " min_overlap " << min_overlap;
    }
  }
}

TEST(CliqueIndex, ParallelMatchesSequential) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const Graph g = random_graph(40, 0.3, 7);
    const auto cliques = maximal_cliques(g, 2);
    const auto seq =
        compute_clique_overlaps_sequential(cliques, g.num_nodes(), 2);
    const auto par = compute_clique_overlaps(cliques, g.num_nodes(), 2, pool);
    EXPECT_TRUE(same_overlaps(seq, par)) << "threads " << threads;
  }
}

TEST(CliqueIndex, EmptyCliqueSet) {
  ThreadPool pool(2);
  EXPECT_TRUE(compute_clique_overlaps({}, 10, 1, pool).empty());
  EXPECT_TRUE(compute_clique_overlaps_sequential({}, 10, 1).empty());
}

TEST(CliqueIndex, MinOverlapZeroThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(compute_clique_overlaps({{0, 1}}, 2, 0, pool), Error);
}

TEST(CliqueIndex, DisjointCliquesNoPairs) {
  const std::vector<NodeSet> cliques{{0, 1, 2}, {3, 4, 5}};
  EXPECT_TRUE(compute_clique_overlaps_sequential(cliques, 6, 1).empty());
}

}  // namespace
}  // namespace kcc
