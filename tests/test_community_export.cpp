#include "io/community_export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::overlapping_cliques;

TEST(CommunityExport, MembershipCsvRows) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const LabeledGraph labeled = with_identity_labels(g);
  CpmOptions options;
  options.min_k = 5;
  const CpmResult r = run_cpm(labeled.graph, options);

  std::ostringstream out;
  write_membership_csv(out, r, labeled);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("as,k,community\n"), std::string::npos);
  // Two 5-communities, 5 members each -> 10 rows + header.
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 11u);
  EXPECT_NE(csv.find("0,5,0\n"), std::string::npos);
}

TEST(CommunityExport, UsesExternalLabels) {
  std::istringstream in("100 200\n200 300\n100 300\n");
  const LabeledGraph g = read_edge_list(in);
  const CpmResult r = run_cpm(g.graph);
  std::ostringstream out;
  write_membership_csv(out, r, g);
  EXPECT_NE(out.str().find("\n100,3,0"), std::string::npos);
  EXPECT_NE(out.str().find("\n300,2,0"), std::string::npos);
  EXPECT_EQ(out.str().find("\n0,3,0"), std::string::npos);  // no dense ids
  EXPECT_EQ(out.str().find("\n1,"), std::string::npos);
}

TEST(CommunityExport, ListingFormat) {
  const Graph g = overlapping_cliques(4, 4, 2);
  const LabeledGraph labeled = with_identity_labels(g);
  const CpmResult r = run_cpm(labeled.graph);
  std::ostringstream out;
  write_community_listing(out, r, labeled);
  const std::string text = out.str();
  EXPECT_NE(text.find("k4 id0:"), std::string::npos);
  EXPECT_NE(text.find("k2 id0:"), std::string::npos);
}

TEST(CommunityExport, LabelMismatchThrows) {
  const Graph g = overlapping_cliques(4, 4, 2);
  const CpmResult r = run_cpm(g);
  LabeledGraph bad;
  bad.graph = g;
  bad.labels = {1, 2};  // wrong size
  std::ostringstream out;
  EXPECT_THROW(write_membership_csv(out, r, bad), Error);
  EXPECT_THROW(write_community_listing(out, r, bad), Error);
}

TEST(CommunityExport, FileWrite) {
  const Graph g = overlapping_cliques(4, 4, 2);
  const LabeledGraph labeled = with_identity_labels(g);
  const CpmResult r = run_cpm(labeled.graph);
  const std::string path = ::testing::TempDir() + "/membership.csv";
  write_membership_csv_file(path, r, labeled);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_THROW(write_membership_csv_file("/nonexistent/dir/x.csv", r, labeled),
               Error);
}

}  // namespace
}  // namespace kcc
