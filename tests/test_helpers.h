// Shared helpers for the test suite.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"

namespace kcc::testing {

/// Builds a graph from an explicit edge list.
inline Graph make_graph(std::size_t n,
                        std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  return Graph::from_edges(n, std::vector<std::pair<NodeId, NodeId>>(edges));
}

/// Complete graph on n nodes.
inline Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  b.ensure_nodes(n);
  return b.build();
}

/// Cycle graph on n nodes.
inline Graph cycle_graph(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    b.add_edge(i, static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

/// Erdős–Rényi G(n, p), deterministic in seed.
inline Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

/// Barabási–Albert-style preferential attachment: each new node attaches
/// `m` edges to degree-weighted targets. Deterministic in seed.
inline Graph preferential_attachment_graph(std::size_t n, std::size_t m,
                                           std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  std::vector<NodeId> pool;
  // Seed star on the first m+1 nodes.
  for (NodeId v = 1; v <= m && v < n; ++v) {
    b.add_edge(0, v);
    pool.push_back(0);
    pool.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId target = pool[rng.next_below(pool.size())];
      if (target != v) {
        b.add_edge(v, target);
        pool.push_back(target);
        pool.push_back(v);
      }
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

/// Two cliques of sizes a and b sharing `shared` nodes (nodes 0..shared-1).
inline Graph overlapping_cliques(std::size_t a, std::size_t b,
                                 std::size_t shared) {
  GraphBuilder builder;
  auto mesh = [&](NodeId lo, NodeId hi, NodeId shared_hi) {
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < shared_hi; ++v) nodes.push_back(v);
    for (NodeId v = lo; v < hi; ++v) nodes.push_back(v);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        builder.add_edge(nodes[i], nodes[j]);
      }
    }
  };
  const NodeId s = static_cast<NodeId>(shared);
  mesh(s, static_cast<NodeId>(a), s);                        // clique A
  mesh(static_cast<NodeId>(a), static_cast<NodeId>(a + b - shared), s);  // B
  return builder.build();
}

}  // namespace kcc::testing
