// Shared helpers for the test suite: graph factories plus the oracle-identity
// assertions used by every engine-equivalence test.
#pragma once

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "check/differential.h"
#include "common/rng.h"
#include "common/set_ops.h"
#include "common/types.h"
#include "cpm/community.h"
#include "cpm/community_tree.h"
#include "graph/graph.h"

namespace kcc::testing {

/// Builds a graph from an explicit edge list.
inline Graph make_graph(std::size_t n,
                        std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  return Graph::from_edges(n, std::vector<std::pair<NodeId, NodeId>>(edges));
}

/// Complete graph on n nodes.
inline Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  b.ensure_nodes(n);
  return b.build();
}

/// Cycle graph on n nodes.
inline Graph cycle_graph(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    b.add_edge(i, static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

/// Erdős–Rényi G(n, p), deterministic in seed.
inline Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

/// Barabási–Albert-style preferential attachment: each new node attaches
/// `m` edges to degree-weighted targets. Deterministic in seed.
inline Graph preferential_attachment_graph(std::size_t n, std::size_t m,
                                           std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  std::vector<NodeId> pool;
  // Seed star on the first m+1 nodes.
  for (NodeId v = 1; v <= m && v < n; ++v) {
    b.add_edge(0, v);
    pool.push_back(0);
    pool.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId target = pool[rng.next_below(pool.size())];
      if (target != v) {
        b.add_edge(v, target);
        pool.push_back(target);
        pool.push_back(v);
      }
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

/// Full structural identity between two CPM results: same clique table,
/// canonical order, ids, clique ids and clique->community maps — the
/// byte-identical-output contract every engine is held to.
inline void expect_same_cpm(const CpmResult& oracle, const CpmResult& other,
                            const std::string& label) {
  ASSERT_EQ(oracle.min_k, other.min_k) << label;
  ASSERT_EQ(oracle.max_k, other.max_k) << label;
  EXPECT_EQ(oracle.cliques, other.cliques) << label;
  for (std::size_t k = oracle.min_k; k <= oracle.max_k; ++k) {
    const CommunitySet& a = oracle.at(k);
    const CommunitySet& b = other.at(k);
    ASSERT_EQ(a.count(), b.count()) << label << " k=" << k;
    for (CommunityId id = 0; id < a.count(); ++id) {
      EXPECT_EQ(a.communities[id].nodes, b.communities[id].nodes)
          << label << " k=" << k << " id=" << id;
      EXPECT_EQ(a.communities[id].clique_ids, b.communities[id].clique_ids)
          << label << " k=" << k << " id=" << id;
      EXPECT_EQ(b.communities[id].id, id) << label << " k=" << k;
      EXPECT_EQ(b.communities[id].k, k) << label << " k=" << k;
    }
    EXPECT_EQ(a.community_of_clique, b.community_of_clique)
        << label << " k=" << k;
  }
}

/// Node-for-node identity between two community trees.
inline void expect_same_tree(const CommunityTree& expected,
                             const CommunityTree& actual,
                             const std::string& label) {
  ASSERT_EQ(expected.nodes().size(), actual.nodes().size()) << label;
  for (std::size_t i = 0; i < expected.nodes().size(); ++i) {
    const TreeNode& a = expected.nodes()[i];
    const TreeNode& b = actual.nodes()[i];
    EXPECT_EQ(a.k, b.k) << label;
    EXPECT_EQ(a.community_id, b.community_id) << label;
    EXPECT_EQ(a.size, b.size) << label;
    EXPECT_EQ(a.parent, b.parent) << label;
    EXPECT_EQ(a.children, b.children) << label;
    EXPECT_EQ(a.is_main, b.is_main) << label;
  }
}

/// The nesting theorem on a tree: every community at level k > min_k nests
/// inside the community its tree parent points at, one level below.
inline void expect_nesting(const CpmResult& cpm, const CommunityTree& tree,
                           const std::string& label) {
  ASSERT_EQ(tree.min_k(), cpm.min_k) << label;
  ASSERT_EQ(tree.max_k(), cpm.max_k) << label;
  for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
    ASSERT_EQ(tree.level(k).size(), cpm.at(k).count()) << label << " k=" << k;
    for (int idx : tree.level(k)) {
      const TreeNode& node = tree.nodes()[idx];
      EXPECT_EQ(node.k, k) << label;
      EXPECT_EQ(node.size, cpm.at(k).communities[node.community_id].size())
          << label << " k=" << k;
      if (k == cpm.min_k) {
        EXPECT_LT(node.parent, 0) << label << " bottom level has no parent";
        continue;
      }
      ASSERT_GE(node.parent, 0) << label << " k=" << k;
      const TreeNode& parent = tree.nodes()[node.parent];
      EXPECT_EQ(parent.k, k - 1) << label;
      EXPECT_TRUE(
          is_subset(cpm.at(k).communities[node.community_id].nodes,
                    cpm.at(k - 1).communities[parent.community_id].nodes))
          << label << " k=" << k << " id=" << node.community_id;
    }
  }
}

/// Runs the check:: differential matrix (all engines × threads × budgets,
/// plus the invariant oracles) on `g` and fails with the first divergent
/// canonical line. The percolation re-derivation is capped so large synth
/// graphs don't turn the suite quadratic; the structural checks always run.
inline void expect_differential_ok(const Graph& g, const std::string& label) {
  check::DiffOptions options;
  options.threads = 2;
  options.invariants.max_cliques_for_percolation = 1500;
  const check::DiffOutcome outcome = check::run_differential(g, options);
  EXPECT_TRUE(outcome.ok()) << label << ":\n" << outcome.failure;
}

/// Two cliques of sizes a and b sharing `shared` nodes (nodes 0..shared-1).
inline Graph overlapping_cliques(std::size_t a, std::size_t b,
                                 std::size_t shared) {
  GraphBuilder builder;
  auto mesh = [&](NodeId lo, NodeId hi, NodeId shared_hi) {
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < shared_hi; ++v) nodes.push_back(v);
    for (NodeId v = lo; v < hi; ++v) nodes.push_back(v);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        builder.add_edge(nodes[i], nodes[j]);
      }
    }
  };
  const NodeId s = static_cast<NodeId>(shared);
  mesh(s, static_cast<NodeId>(a), s);                        // clique A
  mesh(static_cast<NodeId>(a), static_cast<NodeId>(a + b - shared), s);  // B
  return builder.build();
}

}  // namespace kcc::testing
