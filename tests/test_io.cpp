#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "io/dataset_io.h"
#include "io/dot_export.h"
#include "io/edge_list.h"
#include "test_helpers.h"

namespace kcc {
namespace {

TEST(EdgeList, ReadsSimpleFile) {
  std::istringstream in(
      "# AS-level topology\n"
      "100 200\n"
      "200 300\n"
      "\n"
      "100 300  # triangle closes\n");
  const LabeledGraph g = read_edge_list(in);
  EXPECT_EQ(g.graph.num_nodes(), 3u);
  EXPECT_EQ(g.graph.num_edges(), 3u);
  EXPECT_EQ(g.labels, (std::vector<std::uint64_t>{100, 200, 300}));
  EXPECT_TRUE(g.graph.has_edge(g.node_of(100), g.node_of(300)));
}

TEST(EdgeList, DropsSelfLoopsAndDuplicates) {
  std::istringstream in("1 1\n1 2\n2 1\n1 2\n");
  const LabeledGraph g = read_edge_list(in);
  EXPECT_EQ(g.graph.num_edges(), 1u);
  EXPECT_EQ(g.graph.num_nodes(), 2u);
}

TEST(EdgeList, MalformedLineThrows) {
  std::istringstream missing("1\n");
  EXPECT_THROW(read_edge_list(missing), Error);
  std::istringstream trailing("1 2 3\n");
  EXPECT_THROW(read_edge_list(trailing), Error);
}

TEST(EdgeList, UnknownLabelThrows) {
  std::istringstream in("1 2\n");
  const LabeledGraph g = read_edge_list(in);
  EXPECT_THROW(g.node_of(7), Error);
}

TEST(EdgeList, RoundTrip) {
  std::istringstream in("10 20\n20 30\n10 40\n");
  const LabeledGraph g = read_edge_list(in);
  std::ostringstream out;
  write_edge_list(out, g);
  std::istringstream in2(out.str());
  const LabeledGraph g2 = read_edge_list(in2);
  EXPECT_EQ(g.labels, g2.labels);
  EXPECT_EQ(g.graph.edges(), g2.graph.edges());
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"), Error);
}

TEST(EdgeList, IdentityLabels) {
  const LabeledGraph g = with_identity_labels(testing::complete_graph(4));
  EXPECT_EQ(g.labels, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(g.node_of(2), 2u);
}

LabeledGraph five_node_graph() {
  std::istringstream in("1 2\n2 3\n3 4\n4 5\n");
  return read_edge_list(in);
}

TEST(IxpIo, ReadAndWrite) {
  const LabeledGraph g = five_node_graph();
  std::istringstream in(
      "# name country members\n"
      "AMSIX NL 1,2,3\n"
      "WIX NZ 4,5\n");
  const IxpDataset ixps = read_ixp_dataset(in, g);
  ASSERT_EQ(ixps.count(), 2u);
  EXPECT_EQ(ixps.ixp(0).name, "AMSIX");
  EXPECT_EQ(ixps.ixp(0).country, "NL");
  EXPECT_EQ(ixps.ixp(0).participants.size(), 3u);
  EXPECT_TRUE(ixps.is_on_ixp(g.node_of(4)));

  std::ostringstream out;
  write_ixp_dataset(out, ixps, g);
  std::istringstream in2(out.str());
  const IxpDataset round = read_ixp_dataset(in2, g);
  EXPECT_EQ(round.count(), 2u);
  EXPECT_EQ(round.ixp(1).participants, ixps.ixp(1).participants);
}

TEST(IxpIo, MalformedThrows) {
  const LabeledGraph g = five_node_graph();
  std::istringstream missing_members("AMSIX NL\n");
  EXPECT_THROW(read_ixp_dataset(missing_members, g), Error);
  std::istringstream bad_number("AMSIX NL 1,x\n");
  EXPECT_THROW(read_ixp_dataset(bad_number, g), Error);
  std::istringstream unknown_as("AMSIX NL 99\n");
  EXPECT_THROW(read_ixp_dataset(unknown_as, g), Error);
}

TEST(GeoIo, ReadAndWrite) {
  const LabeledGraph g = five_node_graph();
  std::istringstream countries(
      "NL EU\n"
      "US NA\n");
  std::istringstream geo_lines(
      "1 NL\n"
      "2 NL,US\n"
      "3 US\n");
  const GeoDataset geo = read_geo_dataset(countries, geo_lines, g);
  EXPECT_EQ(geo.country_count(), 2u);
  EXPECT_EQ(geo.locations_of(g.node_of(2)).size(), 2u);
  EXPECT_TRUE(geo.locations_of(g.node_of(4)).empty());
  EXPECT_EQ(geo.known_node_count(), 3u);

  std::ostringstream countries_out, geo_out;
  write_geo_dataset(countries_out, geo_out, geo, g);
  std::istringstream countries_in2(countries_out.str());
  std::istringstream geo_in2(geo_out.str());
  const GeoDataset round = read_geo_dataset(countries_in2, geo_in2, g);
  EXPECT_EQ(round.known_node_count(), 3u);
  EXPECT_EQ(round.locations_of(g.node_of(2)),
            geo.locations_of(g.node_of(2)));
}

TEST(GeoIo, UnknownCountryThrows) {
  const LabeledGraph g = five_node_graph();
  std::istringstream countries("NL EU\n");
  std::istringstream geo_lines("1 XX\n");
  EXPECT_THROW(read_geo_dataset(countries, geo_lines, g), Error);
}

TEST(GraphDot, ContainsAllEdges) {
  std::ostringstream os;
  write_graph_dot(os, testing::make_graph(3, {{0, 1}, {1, 2}}));
  const std::string dot = os.str();
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
}

}  // namespace
}  // namespace kcc
