// The streaming engine against the per-k oracle: structural identity
// (communities, ids, clique maps, tree) on the same graph/seed matrix the
// sweep engine is held to, plus the stream-only surface — memory-budget
// parsing, the budget/spill machinery, window-size independence and the
// cpm::Engine dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "clique/parallel_cliques.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "cpm/cpm.h"
#include "cpm/engine.h"
#include "cpm/stream_cpm.h"
#include "cpm/sweep_cpm.h"
#include "synth/as_topology.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::expect_differential_ok;
using testing::expect_same_cpm;
using testing::expect_same_tree;
using testing::make_graph;
using testing::overlapping_cliques;
using testing::preferential_attachment_graph;
using testing::random_graph;

// Oracle identity + tree identity with the sweep engine, under the given
// stream options. Default-option graphs additionally go through the check::
// differential matrix (see tests/test_helpers.h).
void check_graph(const Graph& g, const std::string& label,
                 StreamCpmOptions options = {}) {
  CpmOptions shared;
  shared.min_k = options.min_k;
  shared.max_k = options.max_k;
  shared.threads = options.threads;
  const CpmResult oracle = run_cpm(g, shared);
  const StreamCpmResult stream = run_stream_cpm(g, options);
  expect_same_cpm(oracle, stream.cpm, label);
  if (options.min_k == 2 && options.max_k == 0 &&
      options.memory_budget == 0) {
    expect_differential_ok(g, label);
  }
  if (stream.cpm.max_k < stream.cpm.min_k) return;
  const SweepCpmResult sweep = run_sweep_cpm(g, shared);
  expect_same_tree(sweep.tree, stream.tree, label);
}

// ----------------------------------------------- stream vs per-k oracle

TEST(StreamCpm, MatchesOracleOnRandomGraphs) {
  // >= 12 independent seeds across two densities.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_graph(random_graph(60, 0.2, seed),
                "random n=60 p=0.2 seed=" + std::to_string(seed));
  }
  for (std::uint64_t seed = 7; seed <= 12; ++seed) {
    check_graph(random_graph(40, 0.4, seed),
                "random n=40 p=0.4 seed=" + std::to_string(seed));
  }
}

TEST(StreamCpm, MatchesOracleOnScaleFreeGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    check_graph(preferential_attachment_graph(150, 4, seed),
                "pa n=150 m=4 seed=" + std::to_string(seed));
  }
}

TEST(StreamCpm, MatchesOracleOnSyntheticEcosystem) {
  SynthParams params = SynthParams::test_scale();
  for (std::uint64_t seed : {7u, 42u}) {
    params.seed = seed;
    const Graph g = generate_ecosystem(params).topology.graph;
    check_graph(g, "synth seed=" + std::to_string(seed));
  }
}

TEST(StreamCpm, MatchesOracleOnStructuredGraphs) {
  check_graph(complete_graph(8), "K8");
  check_graph(overlapping_cliques(5, 5, 3), "two 5-cliques sharing 3");
  check_graph(overlapping_cliques(6, 4, 2), "6-clique and 4-clique sharing 2");
  check_graph(make_graph(4, {{0, 1}, {2, 3}}), "two disjoint edges");
}

TEST(StreamCpm, MatchesOracleWithRestrictedKRange) {
  const Graph g = random_graph(50, 0.3, 99);
  for (std::size_t min_k : {2u, 3u, 4u, 6u}) {
    StreamCpmOptions options;
    options.min_k = min_k;
    check_graph(g, "min_k=" + std::to_string(min_k), options);
    options.max_k = min_k + 2;
    check_graph(g, "k in [" + std::to_string(min_k) + ", +2]", options);
  }
}

TEST(StreamCpm, WindowSizeDoesNotChangeTheOutput) {
  // Tiny windows force many enumerate/join hand-offs on a graph whose
  // default run fits one window; the output must not notice.
  const Graph g = random_graph(60, 0.25, 17);
  for (std::size_t window : {1u, 7u, 64u}) {
    StreamCpmOptions options;
    options.window_positions = window;
    check_graph(g, "window=" + std::to_string(window), options);
  }
}

TEST(StreamCpm, MatchesSweepOnPreEnumeratedCliques) {
  const Graph g = random_graph(50, 0.3, 23);
  ThreadPool pool(2);
  std::vector<NodeSet> cliques = parallel_maximal_cliques(g, pool, 2);
  const SweepCpmResult sweep = run_sweep_cpm_on_cliques(g, cliques, {});
  const StreamCpmResult stream = run_stream_cpm_on_cliques(g, cliques, {});
  expect_same_cpm(sweep.cpm, stream.cpm, "pre-enumerated");
  expect_same_tree(sweep.tree, stream.tree, "pre-enumerated");
}

TEST(StreamCpm, EmptyGraphAndEmptyRange) {
  EXPECT_TRUE(run_stream_cpm(Graph{}).cpm.by_k.empty());
  StreamCpmOptions options;
  options.min_k = 9;
  const StreamCpmResult stream = run_stream_cpm(complete_graph(5), options);
  EXPECT_LT(stream.cpm.max_k, stream.cpm.min_k);
  EXPECT_TRUE(stream.cpm.by_k.empty());
  EXPECT_TRUE(stream.tree.nodes().empty());
}

TEST(StreamCpm, RejectsBadInput) {
  StreamCpmOptions options;
  options.min_k = 1;
  EXPECT_THROW(run_stream_cpm(complete_graph(3), options), Error);
  EXPECT_THROW(
      run_stream_cpm_on_cliques(complete_graph(3), {{2, 0, 1}}, {}), Error);
}

// ------------------------------------------------- memory budget + spill

TEST(StreamCpm, ParsesMemoryBudgetUnits) {
  EXPECT_EQ(parse_memory_budget("0"), 0u);
  EXPECT_EQ(parse_memory_budget("65536"), 65536u);
  EXPECT_EQ(parse_memory_budget("64K"), 64u * 1024);
  EXPECT_EQ(parse_memory_budget("64k"), 64u * 1024);
  EXPECT_EQ(parse_memory_budget("200M"), 200u * 1024 * 1024);
  EXPECT_EQ(parse_memory_budget("1G"), 1024ull * 1024 * 1024);
  EXPECT_EQ(parse_memory_budget("3g"), 3ull * 1024 * 1024 * 1024);
}

TEST(StreamCpm, RejectsMalformedMemoryBudgets) {
  EXPECT_THROW(parse_memory_budget(""), Error);
  EXPECT_THROW(parse_memory_budget("K"), Error);
  EXPECT_THROW(parse_memory_budget("12X"), Error);
  EXPECT_THROW(parse_memory_budget("64KB"), Error);
  EXPECT_THROW(parse_memory_budget("1.5G"), Error);
  EXPECT_THROW(parse_memory_budget("-1M"), Error);
  EXPECT_THROW(parse_memory_budget("99999999999999999999"), Error);
}

TEST(StreamCpm, RejectsBudgetSmallerThanTheSpillChunk) {
  // A budget that cannot stage even one reload chunk must fail loudly at
  // entry, not thrash or silently ignore the cap.
  StreamCpmOptions options;
  options.memory_budget = stream_min_memory_budget() - 1;
  EXPECT_THROW(run_stream_cpm(complete_graph(4), options), Error);
  options.memory_budget = 1024;
  EXPECT_THROW(run_stream_cpm(complete_graph(4), options), Error);
  // The floor itself is accepted.
  options.memory_budget = stream_min_memory_budget();
  EXPECT_NO_THROW(run_stream_cpm(complete_graph(4), options));
}

TEST(StreamCpm, SpillsUnderAMinimalBudgetAndStaysExact) {
  // Dense enough that the pair store far exceeds one spill chunk.
  const Graph g = random_graph(80, 0.5, 5);
  StreamCpmOptions options;
  options.memory_budget = stream_min_memory_budget();
  const StreamCpmResult budgeted = run_stream_cpm(g, options);
  EXPECT_GT(budgeted.stats.spilled_pairs, 0u);
  EXPECT_GT(budgeted.stats.spill_bytes, 0u);
  EXPECT_LE(budgeted.stats.spilled_pairs, budgeted.stats.pairs_total)
      << "spilled pairs are a subset of stored pairs";

  const CpmResult oracle = run_cpm(g, {});
  expect_same_cpm(oracle, budgeted.cpm, "spilling run");
  const SweepCpmResult sweep = run_sweep_cpm(g, {});
  expect_same_tree(sweep.tree, budgeted.tree, "spilling run");

  // Unlimited run on the same graph: same output, nothing spilled.
  const StreamCpmResult unlimited = run_stream_cpm(g, {});
  EXPECT_EQ(unlimited.stats.spilled_pairs, 0u);
  EXPECT_EQ(unlimited.stats.pairs_total, budgeted.stats.pairs_total);
  expect_same_cpm(oracle, unlimited.cpm, "unlimited run");
}

TEST(StreamCpm, StatsReportPairsAndPeak) {
  const Graph g = overlapping_cliques(6, 5, 3);
  const StreamCpmResult stream = run_stream_cpm(g, {});
  // Two overlapping maximal cliques -> exactly one overlap pair.
  EXPECT_EQ(stream.stats.pairs_total, 1u);
  EXPECT_EQ(stream.stats.resident_pair_bytes_peak, 8u);
  EXPECT_EQ(stream.stats.spilled_pairs, 0u);
  EXPECT_GE(stream.stats.windows, 1u);
}

// ------------------------------------------------------- engine facade

TEST(CpmEngineStream, DispatchMatchesSweep) {
  const Graph g = random_graph(50, 0.3, 5);
  cpm::Options options;
  options.engine = "sweep";
  const cpm::Result sweep = cpm::Engine(options).run(g);
  options.engine = "stream";
  const cpm::Result stream = cpm::Engine(options).run(g);

  expect_same_cpm(sweep.cpm, stream.cpm, "engine dispatch");
  ASSERT_TRUE(stream.has_tree);
  expect_same_tree(sweep.tree, stream.tree, "engine dispatch");
  EXPECT_EQ(stream.engine_name, "stream");
  EXPECT_EQ(stream.exactness, cpm::Exactness::kExact);
  // The fused pass has no separate clique stage.
  EXPECT_EQ(stream.timings.cliques_seconds, 0.0);
  EXPECT_GT(stream.timings.percolate_seconds, 0.0);
  EXPECT_GT(stream.timings.total_seconds, 0.0);
}

TEST(CpmEngineStream, RunOnCliquesDispatch) {
  const Graph g = random_graph(40, 0.35, 9);
  ThreadPool pool(2);
  std::vector<NodeSet> cliques = parallel_maximal_cliques(g, pool, 2);
  cpm::Options options;
  options.engine = "stream";
  const cpm::Result stream =
      cpm::Engine(options).run_on_cliques(g, cliques);
  options.engine = "sweep";
  const cpm::Result sweep =
      cpm::Engine(options).run_on_cliques(g, std::move(cliques));
  expect_same_cpm(sweep.cpm, stream.cpm, "run_on_cliques dispatch");
  expect_same_tree(sweep.tree, stream.tree, "run_on_cliques dispatch");
}

TEST(CpmEngineStream, ParsesEngineNameAndBudgetFlag) {
  EXPECT_EQ(cpm::parse_engine("stream"), cpm::EngineKind::kStream);
  EXPECT_STREQ(cpm::engine_name(cpm::EngineKind::kStream), "stream");
  EXPECT_TRUE(cpm::engine_info("stream").caps.supports_memory_budget);

  const char* argv[] = {"prog", "--engine=stream", "--memory-budget=64M"};
  const CliArgs args(3, argv, cpm::engine_cli_flags());
  const cpm::Options options = cpm::options_from_cli(args);
  EXPECT_EQ(options.engine, "stream");
  EXPECT_EQ(options.memory_budget, 64ull * 1024 * 1024);

  const char* bad[] = {"prog", "--memory-budget=12X"};
  EXPECT_THROW(
      cpm::options_from_cli(CliArgs(2, bad, cpm::engine_cli_flags())), Error);
}

}  // namespace
}  // namespace kcc
