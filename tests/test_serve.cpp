// In-process tests of the serve daemon: a real Server on a unix socket,
// driven through serve::Client, with every answer checked against an oracle
// computed directly from the in-memory cpm::Result. Also covers protocol
// abuse (malformed frames, oversized frames, out-of-range arguments),
// pipelining, concurrent clients and both shutdown paths.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "cpm/engine.h"
#include "io/snapshot.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/query.h"
#include "serve/server.h"
#include "test_helpers.h"

namespace kcc {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("kcc_serve_" + name))
      .string();
}

/// The shared fixture graph, result and snapshot file — computed once for
/// the whole binary (the servers themselves are per-test).
struct Fixture {
  Graph graph;
  cpm::Result result;
  std::string snapshot_path;

  Fixture()
      : graph(testing::preferential_attachment_graph(80, 4, 9)),
        result(cpm::Engine(cpm::Options{}).run(graph)),
        snapshot_path(temp_path("fixture.snap")) {
    snapshot::write_snapshot_file(snapshot_path, result);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

// -- oracle: the same queries answered from the in-memory Result ------------

std::vector<serve::Membership> oracle_membership(const cpm::Result& r,
                                                 std::uint32_t node,
                                                 std::uint32_t k_filter) {
  std::vector<serve::Membership> out;
  for (std::size_t k = r.cpm.min_k; k <= r.cpm.max_k; ++k) {
    if (k_filter != 0 && k != k_filter) continue;
    for (const Community& c : r.cpm.at(k).communities) {
      if (std::binary_search(c.nodes.begin(), c.nodes.end(), node)) {
        out.push_back({static_cast<std::uint32_t>(k), c.id});
      }
    }
  }
  return out;
}

std::uint32_t oracle_parent(const cpm::Result& r, std::uint32_t k,
                            std::uint32_t id) {
  const TreeNode& node = r.tree.nodes()[r.tree.index_of(k, id)];
  return static_cast<std::uint32_t>(r.tree.nodes()[node.parent].community_id);
}

std::vector<serve::AncestryEntry> oracle_ancestry(const cpm::Result& r,
                                                  std::uint32_t k,
                                                  std::uint32_t id) {
  std::vector<serve::AncestryEntry> out;
  while (true) {
    out.push_back({k, id,
                   static_cast<std::uint32_t>(
                       r.cpm.at(k).communities[id].nodes.size())});
    if (k == r.cpm.min_k) break;
    id = oracle_parent(r, k, id);
    --k;
  }
  return out;
}

std::optional<serve::Membership> oracle_lca(const cpm::Result& r,
                                            std::uint32_t k1,
                                            std::uint32_t id1,
                                            std::uint32_t k2,
                                            std::uint32_t id2) {
  while (k1 > k2) { id1 = oracle_parent(r, k1, id1); --k1; }
  while (k2 > k1) { id2 = oracle_parent(r, k2, id2); --k2; }
  while (id1 != id2 && k1 > r.cpm.min_k) {
    id1 = oracle_parent(r, k1, id1);
    id2 = oracle_parent(r, k1, id2);
    --k1;
  }
  if (id1 != id2) return std::nullopt;
  return serve::Membership{k1, id1};
}

serve::Overlap oracle_overlap(const cpm::Result& r, std::uint32_t u,
                              std::uint32_t v) {
  serve::Overlap o;
  for (std::size_t k = r.cpm.min_k; k <= r.cpm.max_k; ++k) {
    for (const Community& c : r.cpm.at(k).communities) {
      if (std::binary_search(c.nodes.begin(), c.nodes.end(), u) &&
          std::binary_search(c.nodes.begin(), c.nodes.end(), v)) {
        if (k > o.max_k) {
          o.max_k = static_cast<std::uint32_t>(k);
          o.community = c.id;  // ids ascend, so the first hit is the witness
          o.count = 0;
        }
        ++o.count;
      }
    }
  }
  return o;
}

/// A running server on its own socket, torn down with the test.
struct LiveServer {
  explicit LiveServer(const std::string& tag, bool allow_remote = true)
      : socket_path(temp_path(tag + ".sock")) {
    serve::ServerOptions options;
    options.socket_path = socket_path;
    options.allow_remote_shutdown = allow_remote;
    server = std::make_unique<serve::Server>(fixture().snapshot_path,
                                             std::move(options));
    server->start();
  }

  std::string socket_path;
  std::unique_ptr<serve::Server> server;
};

void check_query_mix(serve::Client& client, const cpm::Result& r,
                     std::uint32_t salt) {
  const auto num_nodes =
      static_cast<std::uint32_t>(fixture().graph.num_nodes());
  for (std::uint32_t step = 0; step < 40; ++step) {
    const std::uint32_t node = (step * 13 + salt) % num_nodes;
    EXPECT_EQ(client.membership(node), oracle_membership(r, node, 0));
    const std::uint32_t other = (node + 7 + salt) % num_nodes;
    EXPECT_EQ(client.overlap(node, other), oracle_overlap(r, node, other));
  }
  for (std::size_t k = r.cpm.min_k; k <= r.cpm.max_k; ++k) {
    const CommunitySet& set = r.cpm.at(k);
    for (const Community& c : set.communities) {
      EXPECT_EQ(client.community(k, c.id), c.nodes) << "k=" << k;
      EXPECT_EQ(client.ancestry(k, c.id), oracle_ancestry(r, k, c.id))
          << "k=" << k;
    }
    // LCA of the first and last community at this level vs the apex chain.
    if (set.count() >= 2) {
      const std::uint32_t a = 0, b = set.count() - 1;
      EXPECT_EQ(client.lca(k, a, k, b), oracle_lca(r, k, a, k, b))
          << "k=" << k;
    }
  }
}

// -- tests ------------------------------------------------------------------

TEST(Serve, InfoMatchesSnapshot) {
  LiveServer live("info");
  serve::Client client(live.socket_path);
  const serve::ServerInfo info = client.info();
  const cpm::Result& r = fixture().result;
  EXPECT_EQ(info.min_k, r.cpm.min_k);
  EXPECT_EQ(info.max_k, r.cpm.max_k);
  EXPECT_EQ(info.num_communities, r.cpm.total_communities());
  EXPECT_TRUE(info.has_tree);
  EXPECT_EQ(info.engine, r.engine_name);
  EXPECT_EQ(info.exactness, static_cast<std::uint8_t>(r.exactness));
}

TEST(Serve, QueryMixMatchesOracle) {
  LiveServer live("mix");
  serve::Client client(live.socket_path);
  check_query_mix(client, fixture().result, /*salt=*/0);
}

TEST(Serve, ConcurrentClientsAgree) {
  LiveServer live("concurrent");
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < 4; ++t) {
    workers.emplace_back([&live, t] {
      serve::Client client(live.socket_path);
      check_query_mix(client, fixture().result, /*salt=*/t * 17 + 1);
    });
  }
  for (std::thread& w : workers) w.join();
}

TEST(Serve, PipelinedResponsesArriveInOrder) {
  LiveServer live("pipeline");
  serve::Client client(live.socket_path);
  const cpm::Result& r = fixture().result;
  const std::uint32_t depth = 64;
  for (std::uint32_t i = 0; i < depth; ++i) {
    client.send_request(serve::encode_membership(i % 80, 0));
  }
  for (std::uint32_t i = 0; i < depth; ++i) {
    std::vector<std::uint8_t> payload = client.read_response();
    ASSERT_EQ(payload[0], static_cast<std::uint8_t>(serve::Status::kOk));
    serve::Reader in(payload.data() + 1, payload.size() - 1);
    EXPECT_EQ(in.u32(), oracle_membership(r, i % 80, 0).size()) << i;
  }
}

TEST(Serve, MalformedRequestsGetBadRequestAndConnectionSurvives) {
  LiveServer live("malformed");
  serve::Client client(live.socket_path);
  const std::vector<std::vector<std::uint8_t>> bad = {
      {},                            // no op byte
      {99},                          // unknown op
      {2, 1, 0, 0},                  // membership with truncated fields
      {3, 0, 0, 0, 0, 0, 0, 0, 0, 7},  // community with trailing bytes
  };
  for (const auto& request : bad) {
    client.send_request(request);
    const auto payload = client.read_response();
    EXPECT_EQ(payload[0],
              static_cast<std::uint8_t>(serve::Status::kBadRequest));
  }
  // The connection stays usable after every rejection.
  EXPECT_EQ(client.info().engine, fixture().result.engine_name);
}

TEST(Serve, OutOfRangeArgumentsAreBadRequests) {
  LiveServer live("range");
  serve::Client client(live.socket_path);
  EXPECT_THROW(client.community(2, 0xFFFFFF), Error);
  EXPECT_THROW(client.community(9999, 0), Error);
  EXPECT_THROW(client.membership(0, 9999), Error);
  EXPECT_THROW(client.ancestry(9999, 0), Error);
  // A node id beyond the graph is not an error — just an empty answer.
  EXPECT_TRUE(client.membership(1 << 20).empty());
}

TEST(Serve, OversizedFrameDropsOnlyThatConnection) {
  LiveServer live("oversized");
  serve::Client victim(live.socket_path);
  std::vector<std::uint8_t> huge_prefix;
  serve::put_u32(huge_prefix, serve::kMaxRequestBytes + 1);
  serve::write_all(victim.fd(), huge_prefix.data(), huge_prefix.size());
  EXPECT_THROW(victim.read_response(), Error);  // server dropped us
  // The server itself is unharmed.
  serve::Client fresh(live.socket_path);
  EXPECT_EQ(fresh.info().engine, fixture().result.engine_name);
}

TEST(Serve, TreelessSnapshotAnswersUnsupportedForTreeOps) {
  cpm::Options options;
  options.build_tree = false;
  const cpm::Result result = cpm::Engine(options).run(fixture().graph);
  ASSERT_FALSE(result.has_tree);
  const std::string path = temp_path("treeless.snap");
  snapshot::write_snapshot_file(path, result);
  snapshot::SnapshotView view(path);

  std::vector<std::uint8_t> response;
  const auto request = serve::encode_ancestry(result.cpm.min_k, 0);
  serve::evaluate(view, request.data(), request.size(), response,
                  /*allow_shutdown=*/true);
  EXPECT_EQ(response[0],
            static_cast<std::uint8_t>(serve::Status::kUnsupported));
  // Non-tree queries still work.
  const auto member = serve::encode_membership(0, 0);
  serve::evaluate(view, member.data(), member.size(), response, true);
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(serve::Status::kOk));
  std::remove(path.c_str());
}

TEST(Serve, RemoteShutdownStopsTheWaiter) {
  LiveServer live("shutdown");
  std::thread waiter([&live] { live.server->wait(); });
  {
    serve::Client client(live.socket_path);
    EXPECT_EQ(client.request_shutdown(), serve::Status::kOk);
  }
  waiter.join();  // wait() returns only after a full teardown
  EXPECT_TRUE(live.server->stopping());
}

TEST(Serve, RemoteShutdownCanBeDisabled) {
  LiveServer live("noshutdown", /*allow_remote=*/false);
  serve::Client client(live.socket_path);
  EXPECT_EQ(client.request_shutdown(), serve::Status::kShuttingDown);
  // Refusal leaves the server fully operational.
  EXPECT_EQ(client.info().engine, fixture().result.engine_name);
  live.server->shutdown();
  EXPECT_TRUE(live.server->stopping());
}

TEST(Serve, StaleSocketFileIsReplaced) {
  const std::string path = temp_path("stale.sock");
  // Simulate a crashed daemon: bind a socket file, then abandon it without
  // unlinking (closing the fd leaves the filesystem entry behind).
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    LiveServer live("stale");  // same path: must unlink + rebind cleanly
    serve::Client client(live.socket_path);
    EXPECT_EQ(client.info().min_k, fixture().result.cpm.min_k);
  }
  // A non-socket file at the path is refused instead of clobbered.
  { std::ofstream out(path); out << "precious"; }
  serve::ServerOptions options;
  options.socket_path = path;
  EXPECT_THROW(serve::Server(fixture().snapshot_path, std::move(options)),
               Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kcc
