// Unit tests for the incremental CPM engine: digest identity with a
// from-scratch sweep after add-only / remove-only / mixed batches, batch
// inversion, strict batch validation, restricted k ranges and both clique
// backends. The randomized cross-family coverage lives in the
// check::churn_differential harness (kcc_fuzz --schedules); these are the
// deterministic corner cases.

#include "cpm/incr_cpm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/rng.h"
#include "cpm/engine.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using cpm::EdgeBatch;
using cpm::IncrementalCpm;

/// Canonical digest of a from-scratch sweep on `g`, clique table
/// re-sorted lexicographically to match the incremental serialization.
std::string sweep_digest(const Graph& g, cpm::Options options = {}) {
  options.engine = "sweep";
  cpm::Result fresh = cpm::Engine(options).run(g);
  cpm::canonicalise_clique_order(fresh);
  return cpm::canonical_text(fresh);
}

std::string digest(const IncrementalCpm& state) {
  return cpm::canonical_text(state.result());
}

/// Mutable edge-set mirror of the incremental state, for rebuilding the
/// from-scratch comparison graph after each batch.
struct Mirror {
  std::size_t n = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;

  explicit Mirror(const Graph& g) : n(g.num_nodes()), edges(g.edges()) {}

  void apply(const EdgeBatch& batch) {
    for (const auto& [u, v] : batch.remove) {
      const auto lo = std::min(u, v), hi = std::max(u, v);
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [&](const std::pair<NodeId, NodeId>& e) {
                                   return std::min(e.first, e.second) == lo &&
                                          std::max(e.first, e.second) == hi;
                                 }),
                  edges.end());
    }
    for (const auto& e : batch.add) {
      edges.push_back(e);
      n = std::max<std::size_t>(
          n, static_cast<std::size_t>(std::max(e.first, e.second)) + 1);
    }
  }

  Graph build() const { return Graph::from_edges(n, edges); }
};

/// Draws `count` absent non-loop pairs from the mirror's node universe.
EdgeBatch add_batch(const Mirror& mirror, std::size_t count, Rng& rng) {
  EdgeBatch batch;
  const std::size_t n = std::max<std::size_t>(mirror.n, 2);
  auto present = [&](NodeId u, NodeId v) {
    for (const auto& e : mirror.edges) {
      if (std::minmax(e.first, e.second) == std::minmax(u, v)) return true;
    }
    for (const auto& e : batch.add) {
      if (std::minmax(e.first, e.second) == std::minmax(u, v)) return true;
    }
    return false;
  };
  while (batch.add.size() < count) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || present(u, v)) continue;
    batch.add.emplace_back(std::min(u, v), std::max(u, v));
  }
  return batch;
}

/// Draws `count` present edges, without replacement.
EdgeBatch remove_batch(const Mirror& mirror, std::size_t count, Rng& rng) {
  EdgeBatch batch;
  std::vector<std::pair<NodeId, NodeId>> pool = mirror.edges;
  batch.remove = rng.sample_without_replacement(
      pool, std::min<std::size_t>(count, pool.size()));
  return batch;
}

/// Applies `batch` to both the live state and the mirror, then asserts
/// digest identity against a from-scratch sweep of the mirror.
void apply_and_check(IncrementalCpm& state, Mirror& mirror,
                     const EdgeBatch& batch, const cpm::Options& options,
                     const std::string& label) {
  state.apply(batch);
  mirror.apply(batch);
  ASSERT_EQ(digest(state), sweep_digest(mirror.build(), options)) << label;
}

TEST(IncrCpm, BootstrapMatchesSweepAcrossFamilies) {
  const std::vector<std::pair<std::string, Graph>> graphs = {
      {"empty", Graph::from_edges(0, {})},
      {"k5", testing::complete_graph(5)},
      {"cycle", testing::cycle_graph(9)},
      {"er", testing::random_graph(24, 0.3, 11)},
      {"pa", testing::preferential_attachment_graph(40, 3, 7)},
      {"overlap", testing::overlapping_cliques(6, 5, 3)},
  };
  for (const auto& [name, g] : graphs) {
    const IncrementalCpm state(g);
    EXPECT_EQ(digest(state), sweep_digest(g)) << name;
  }
}

TEST(IncrCpm, AddOnlyBatchesKeepDigestIdentity) {
  const Graph g = testing::random_graph(20, 0.15, 3);
  Mirror mirror(g);
  IncrementalCpm state(g);
  Rng rng(17);
  for (int b = 0; b < 5; ++b) {
    apply_and_check(state, mirror, add_batch(mirror, 4, rng), {},
                    "add batch " + std::to_string(b));
  }
}

TEST(IncrCpm, RemoveOnlyBatchesKeepDigestIdentity) {
  const Graph g = testing::random_graph(18, 0.4, 5);
  Mirror mirror(g);
  IncrementalCpm state(g);
  Rng rng(23);
  for (int b = 0; b < 5; ++b) {
    apply_and_check(state, mirror, remove_batch(mirror, 5, rng), {},
                    "remove batch " + std::to_string(b));
  }
}

TEST(IncrCpm, RemoveThenReAddAcrossBatchesRoundTrips) {
  // A remove-then-re-add round trip is two batches (one batch rejects the
  // same pair on both sides) and must land back on the original digest.
  const Graph g = testing::overlapping_cliques(5, 5, 2);
  IncrementalCpm state(g);
  const std::string before = digest(state);
  const auto e = g.edges().front();
  EdgeBatch removes, adds;
  removes.remove.push_back(e);
  adds.add.push_back(e);
  state.apply(removes);
  state.apply(adds);
  EXPECT_EQ(digest(state), before);
  EXPECT_EQ(state.num_edges(), g.num_edges());
}

TEST(IncrCpm, BatchThenInverseRestoresDigest) {
  const Graph g = testing::preferential_attachment_graph(30, 3, 19);
  Mirror mirror(g);
  IncrementalCpm state(g);
  Rng rng(31);
  const std::string before = digest(state);

  EdgeBatch batch = add_batch(mirror, 3, rng);
  EdgeBatch removes = remove_batch(mirror, 4, rng);
  batch.remove = std::move(removes.remove);

  state.apply(batch);
  EXPECT_NE(digest(state), before) << "batch should change the structure";
  state.apply(batch.inverse());
  EXPECT_EQ(digest(state), before);
  EXPECT_EQ(state.batches_applied(), 2u);
}

TEST(IncrCpm, EmptyBatchIsANoOp) {
  const Graph g = testing::random_graph(15, 0.3, 2);
  IncrementalCpm state(g);
  const std::string before = digest(state);
  state.apply(EdgeBatch{});
  EXPECT_EQ(digest(state), before);
  EXPECT_EQ(state.num_edges(), g.num_edges());
}

TEST(IncrCpm, RejectsInvalidBatchesAndLeavesStateUntouched) {
  const Graph g = testing::complete_graph(4);  // edges 0-1, 0-2, ... 2-3
  IncrementalCpm state(g);
  const std::string before = digest(state);

  const auto expect_rejected = [&](const EdgeBatch& batch,
                                   const std::string& label) {
    EXPECT_THROW(state.apply(batch), Error) << label;
    EXPECT_EQ(digest(state), before) << label << ": state mutated";
  };

  EdgeBatch add_present;
  add_present.add.emplace_back(0, 1);
  expect_rejected(add_present, "adding a present edge");

  EdgeBatch remove_absent;
  remove_absent.remove.emplace_back(0, 5);
  expect_rejected(remove_absent, "removing an absent edge");

  EdgeBatch self_loop;
  self_loop.add.emplace_back(7, 7);
  expect_rejected(self_loop, "self-loop add");

  EdgeBatch dup_side;
  dup_side.add.emplace_back(0, 4);
  dup_side.add.emplace_back(4, 0);  // same pair, other orientation
  expect_rejected(dup_side, "pair listed twice on one side");

  EdgeBatch both_sides;
  both_sides.remove.emplace_back(0, 1);
  both_sides.add.emplace_back(1, 0);
  expect_rejected(both_sides, "same pair on both sides");
}

TEST(IncrCpm, RestrictedKRangeMatchesSweepUnderChurn) {
  cpm::Options options;
  options.min_k = 3;
  options.max_k = 5;
  const Graph g = testing::random_graph(22, 0.35, 13);
  Mirror mirror(g);
  IncrementalCpm state(g, options);
  ASSERT_EQ(digest(state), sweep_digest(g, options));
  Rng rng(41);
  for (int b = 0; b < 4; ++b) {
    EdgeBatch batch = add_batch(mirror, 2, rng);
    EdgeBatch removes = remove_batch(mirror, 2, rng);
    batch.remove = std::move(removes.remove);
    apply_and_check(state, mirror, batch, options,
                    "restricted batch " + std::to_string(b));
  }
}

TEST(IncrCpm, CliqueBackendsAgreeUnderChurn) {
  const Graph g = testing::preferential_attachment_graph(36, 4, 29);
  cpm::Options sparse, bitset;
  sparse.clique_backend = clique::Backend::kSparse;
  bitset.clique_backend = clique::Backend::kBitset;
  Mirror mirror(g);
  IncrementalCpm a(g, sparse), b(g, bitset);
  Rng rng(53);
  for (int i = 0; i < 4; ++i) {
    EdgeBatch batch = add_batch(mirror, 3, rng);
    EdgeBatch removes = remove_batch(mirror, 3, rng);
    batch.remove = std::move(removes.remove);
    mirror.apply(batch);
    a.apply(batch);
    b.apply(batch);
    ASSERT_EQ(digest(a), digest(b)) << "backend divergence at batch " << i;
    ASSERT_EQ(digest(a), sweep_digest(mirror.build()))
        << "both backends diverged at batch " << i;
  }
}

TEST(IncrCpm, RegistryEngineIsExactAndCoversThePatchPath) {
  // The registry full-run hook holds back a suffix of edges and apply()s
  // them, so running it at all exercises churn; its digest must match the
  // canonicalised sweep.
  const Graph g = testing::preferential_attachment_graph(45, 3, 37);
  cpm::Options options;
  options.engine = "incremental";
  const cpm::Result run = cpm::Engine(options).run(g);
  EXPECT_EQ(run.engine_name, "incremental");
  EXPECT_EQ(run.exactness, cpm::Exactness::kExact);
  EXPECT_TRUE(cpm::engine_info("incremental").caps.canonical_clique_order);
  EXPECT_EQ(cpm::canonical_text(run), sweep_digest(g));
}

TEST(IncrCpm, NodeUniverseGrowsWithAddedEdges) {
  IncrementalCpm state(Graph::from_edges(0, {}));
  EdgeBatch batch;
  batch.add.emplace_back(2, 5);
  state.apply(batch);
  EXPECT_EQ(state.num_nodes(), 6u);
  EXPECT_EQ(state.num_edges(), 1u);
  EXPECT_EQ(digest(state), sweep_digest(Graph::from_edges(6, {{2, 5}})));
}

}  // namespace
}  // namespace kcc
