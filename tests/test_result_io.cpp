#include "io/result_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::overlapping_cliques;
using testing::random_graph;

void expect_equal_results(const CpmResult& a, const CpmResult& b) {
  ASSERT_EQ(a.min_k, b.min_k);
  ASSERT_EQ(a.max_k, b.max_k);
  ASSERT_EQ(a.cliques, b.cliques);
  for (std::size_t k = a.min_k; k <= a.max_k; ++k) {
    const auto& sa = a.at(k);
    const auto& sb = b.at(k);
    ASSERT_EQ(sa.count(), sb.count()) << "k " << k;
    for (std::size_t i = 0; i < sa.count(); ++i) {
      EXPECT_EQ(sa.communities[i].nodes, sb.communities[i].nodes);
      EXPECT_EQ(sa.communities[i].clique_ids, sb.communities[i].clique_ids);
      EXPECT_EQ(sa.communities[i].k, sb.communities[i].k);
      EXPECT_EQ(sa.communities[i].id, sb.communities[i].id);
    }
    EXPECT_EQ(sa.community_of_clique, sb.community_of_clique);
  }
}

TEST(ResultIo, RoundTripSmallGraph) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult original = run_cpm(g);
  std::ostringstream out;
  write_cpm_result(out, original);
  std::istringstream in(out.str());
  std::size_t num_nodes = 0;
  const CpmResult loaded = read_cpm_result(in, &num_nodes);
  expect_equal_results(original, loaded);
  EXPECT_EQ(num_nodes, 7u);
}

TEST(ResultIo, RoundTripRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(30, 0.25, seed);
    const CpmResult original = run_cpm(g);
    if (original.max_k < original.min_k) continue;
    std::ostringstream out;
    write_cpm_result(out, original);
    std::istringstream in(out.str());
    expect_equal_results(original, read_cpm_result(in));
  }
}

TEST(ResultIo, EmptyResultRejected) {
  CpmResult empty;
  empty.min_k = 2;
  empty.max_k = 1;
  std::ostringstream out;
  EXPECT_THROW(write_cpm_result(out, empty), Error);
}

TEST(ResultIo, BadMagicRejected) {
  std::istringstream in("not-a-result 1\n");
  EXPECT_THROW(read_cpm_result(in), Error);
}

TEST(ResultIo, BadVersionRejected) {
  std::istringstream in("kcc-cpm-result 99\nmeta 2 3 0 0\n");
  EXPECT_THROW(read_cpm_result(in), Error);
}

TEST(ResultIo, TruncatedFileRejected) {
  const Graph g = overlapping_cliques(4, 4, 2);
  const CpmResult original = run_cpm(g);
  std::ostringstream out;
  write_cpm_result(out, original);
  const std::string text = out.str();
  std::istringstream in(text.substr(0, text.size() / 2));
  EXPECT_THROW(read_cpm_result(in), Error);
}

TEST(ResultIo, CorruptCliqueRejected) {
  std::istringstream in(
      "kcc-cpm-result 1\n"
      "meta 2 2 1 3\n"
      "clique 0 2 1\n"  // unsorted
      "set 2 0\n");
  EXPECT_THROW(read_cpm_result(in), Error);
}

TEST(ResultIo, FileRoundTrip) {
  const Graph g = overlapping_cliques(5, 4, 2);
  const CpmResult original = run_cpm(g);
  const std::string path = ::testing::TempDir() + "/kcc_result.txt";
  write_cpm_result_file(path, original);
  const CpmResult loaded = read_cpm_result_file(path);
  expect_equal_results(original, loaded);
  EXPECT_THROW(read_cpm_result_file("/nonexistent/result.txt"), Error);
}

}  // namespace
}  // namespace kcc
