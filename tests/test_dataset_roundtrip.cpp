// Integration: a generated ecosystem written through io/ and read back must
// reproduce the identical analysis (this is the workflow of a user running
// the pipeline on on-disk datasets).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cpm/cpm.h"
#include "io/dataset_io.h"
#include "io/edge_list.h"
#include "synth/as_topology.h"

namespace kcc {
namespace {

struct RoundTripped {
  LabeledGraph topology;
  IxpDataset ixps;
  GeoDataset geo;
};

RoundTripped round_trip(const AsEcosystem& eco) {
  std::stringstream edges, ixps, countries, geo;
  write_edge_list(edges, eco.topology);
  write_ixp_dataset(ixps, eco.ixps, eco.topology);
  write_geo_dataset(countries, geo, eco.geo, eco.topology);

  RoundTripped out;
  out.topology = read_edge_list(edges);
  out.ixps = read_ixp_dataset(ixps, out.topology);
  out.geo = read_geo_dataset(countries, geo, out.topology);
  return out;
}

const AsEcosystem& eco() {
  static const AsEcosystem e = [] {
    SynthParams params = SynthParams::test_scale();
    params.seed = 99;
    return generate_ecosystem(params);
  }();
  return e;
}

TEST(DatasetRoundTrip, TopologyIdentical) {
  const RoundTripped loaded = round_trip(eco());
  // The generated labels are 1..n in node order, so dense ids are stable.
  EXPECT_EQ(loaded.topology.labels, eco().topology.labels);
  EXPECT_EQ(loaded.topology.graph.edges(), eco().topology.graph.edges());
}

TEST(DatasetRoundTrip, IxpsIdentical) {
  const RoundTripped loaded = round_trip(eco());
  ASSERT_EQ(loaded.ixps.count(), eco().ixps.count());
  for (IxpId i = 0; i < loaded.ixps.count(); ++i) {
    EXPECT_EQ(loaded.ixps.ixp(i).name, eco().ixps.ixp(i).name);
    EXPECT_EQ(loaded.ixps.ixp(i).country, eco().ixps.ixp(i).country);
    EXPECT_EQ(loaded.ixps.ixp(i).participants,
              eco().ixps.ixp(i).participants);
  }
}

TEST(DatasetRoundTrip, GeoIdentical) {
  const RoundTripped loaded = round_trip(eco());
  EXPECT_EQ(loaded.geo.known_node_count(), eco().geo.known_node_count());
  for (NodeId v = 0; v < eco().num_ases(); ++v) {
    const auto& original = eco().geo.locations_of(v);
    const auto& reloaded = loaded.geo.locations_of(v);
    ASSERT_EQ(original.size(), reloaded.size()) << "node " << v;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(eco().geo.country(original[i]).code,
                loaded.geo.country(reloaded[i]).code);
    }
  }
}

TEST(DatasetRoundTrip, CpmResultsIdentical) {
  const RoundTripped loaded = round_trip(eco());
  CpmOptions options;
  options.max_k = 8;  // bounded for test speed
  const CpmResult original = run_cpm(eco().topology.graph, options);
  const CpmResult reloaded = run_cpm(loaded.topology.graph, options);
  ASSERT_EQ(original.max_k, reloaded.max_k);
  for (std::size_t k = original.min_k; k <= original.max_k; ++k) {
    ASSERT_EQ(original.at(k).count(), reloaded.at(k).count()) << "k " << k;
    for (std::size_t i = 0; i < original.at(k).count(); ++i) {
      EXPECT_EQ(original.at(k).communities[i].nodes,
                reloaded.at(k).communities[i].nodes);
    }
  }
}

}  // namespace
}  // namespace kcc
