#include "clique/parallel_cliques.h"

#include <gtest/gtest.h>

#include <span>
#include <tuple>

#include "clique/bron_kerbosch.h"
#include "clique/clique_stream.h"
#include "clique/enumerator.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::random_graph;

class ParallelCliquesThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelCliquesThreads, MatchesSequentialExactly) {
  ThreadPool pool(GetParam());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = random_graph(60, 0.15, seed);
    EXPECT_EQ(parallel_maximal_cliques(g, pool), maximal_cliques(g))
        << "seed " << seed << " threads " << GetParam();
  }
}

TEST_P(ParallelCliquesThreads, MinSizeRespected) {
  ThreadPool pool(GetParam());
  const Graph g = random_graph(50, 0.2, 3);
  EXPECT_EQ(parallel_maximal_cliques(g, pool, 3), maximal_cliques(g, 3));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParallelCliquesThreads,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelCliques, EmptyGraph) {
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_maximal_cliques(Graph{}, pool).empty());
}

TEST(ParallelCliques, DenseGraph) {
  ThreadPool pool(4);
  const Graph g = random_graph(40, 0.6, 11);
  EXPECT_EQ(parallel_maximal_cliques(g, pool), maximal_cliques(g));
}

TEST(ParallelCliques, RepeatedRunsIdentical) {
  ThreadPool pool(8);
  const Graph g = random_graph(80, 0.1, 42);
  const auto first = parallel_maximal_cliques(g, pool);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parallel_maximal_cliques(g, pool), first);
  }
}

// Streaming enumerator: same cliques in the same order as the batch
// enumerator, for any window size and thread count.
std::vector<NodeSet> collect_stream(const Graph& g, std::size_t threads,
                                    std::size_t window,
                                    std::size_t min_size = 1) {
  ThreadPool pool(threads);
  CliqueStreamOptions options;
  options.min_size = min_size;
  options.window_positions = window;
  std::vector<NodeSet> out;
  stream_maximal_cliques(g, pool, options,
                         [&](NodeSet&& c) { out.push_back(std::move(c)); });
  return out;
}

TEST(CliqueStream, MatchesBatchEnumeratorAcrossWindowSizes) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(60, 0.15, seed);
    const auto batch = parallel_maximal_cliques(g, pool);
    for (std::size_t window : {1u, 3u, 16u, 1000u}) {
      EXPECT_EQ(collect_stream(g, 4, window), batch)
          << "seed " << seed << " window " << window;
    }
  }
}

TEST(CliqueStream, MatchesAcrossThreadCounts) {
  const Graph g = random_graph(50, 0.25, 8);
  const auto expected = collect_stream(g, 1, 7);
  for (std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(collect_stream(g, threads, 7), expected)
        << "threads " << threads;
  }
}

TEST(CliqueStream, MinSizeRespected) {
  ThreadPool pool(4);
  const Graph g = random_graph(50, 0.2, 3);
  EXPECT_EQ(collect_stream(g, 4, 16, 3), maximal_cliques(g, 3));
}

TEST(CliqueStream, ReportsWindowBoundariesInOrder) {
  const Graph g = random_graph(40, 0.2, 1);
  ThreadPool pool(2);
  CliqueStreamOptions options;
  options.window_positions = 7;  // 40 positions -> 6 windows
  std::vector<std::size_t> boundaries;
  const std::size_t windows = stream_maximal_cliques(
      g, pool, options, [](NodeSet&&) {},
      [&](std::size_t done) { boundaries.push_back(done); });
  EXPECT_EQ(windows, 6u);
  ASSERT_EQ(boundaries.size(), 6u);
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    EXPECT_EQ(boundaries[i], i + 1);
  }
}

TEST(CliqueStream, EmptyGraph) {
  EXPECT_TRUE(collect_stream(Graph{}, 2, 8).empty());
}

// ------------------------------------------- backend x thread-count matrix

class CliqueBackendMatrix
    : public ::testing::TestWithParam<std::tuple<clique::Backend, std::size_t>> {
};

// Every (backend, threads) cell must reproduce the sequential sparse
// enumeration exactly — contents and order — which is the property the
// cpm engines' byte-identical-output contract rests on.
TEST_P(CliqueBackendMatrix, MatchesSequentialSparseExactly) {
  const auto [backend, threads] = GetParam();
  ThreadPool pool(threads);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(60, 0.15, seed);
    clique::Options sparse;
    sparse.backend = clique::Backend::kSparse;
    const auto expected = clique::Enumerator(g, sparse).collect();

    clique::Options opts;
    opts.backend = backend;
    const clique::Enumerator e(g, opts);
    EXPECT_EQ(e.collect(pool), expected)
        << clique::backend_name(backend) << " threads " << threads
        << " seed " << seed;
    // And through the streaming driver, window smaller than the graph.
    std::vector<NodeSet> streamed;
    e.stream(pool, [&](std::span<const NodeId> c) {
      streamed.emplace_back(c.begin(), c.end());
    });
    EXPECT_EQ(streamed, expected)
        << clique::backend_name(backend) << " threads " << threads
        << " seed " << seed << " (stream)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendSweep, CliqueBackendMatrix,
    ::testing::Combine(::testing::Values(clique::Backend::kAuto,
                                         clique::Backend::kSparse,
                                         clique::Backend::kBitset),
                       ::testing::Values(1, 2, 4, 8)));

// Hub fallback: forcing a tiny universe cap makes most subproblems take the
// sparse fallback inside the bitset backend; the mixed run must still be
// identical to both pure kernels.
TEST(CliqueBackends, HubFallbackMatchesPureKernels) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(70, 0.2, seed);
    clique::Options sparse;
    sparse.backend = clique::Backend::kSparse;
    const auto expected = clique::Enumerator(g, sparse).collect();

    clique::Options mixed;
    mixed.backend = clique::Backend::kBitset;
    mixed.bitset_max_universe = 4;  // almost everything falls back
    const clique::Enumerator e(g, mixed);
    EXPECT_EQ(e.collect(), expected) << "seed " << seed;
    EXPECT_EQ(e.collect(pool), expected) << "seed " << seed << " (pool)";
  }
}

TEST(CliqueBatch, FlatBufferRoundTrip) {
  clique::CliqueBatch batch;
  EXPECT_TRUE(batch.empty());
  const NodeSet a{3, 5, 9};
  const NodeSet b{1};
  batch.add(a);
  batch.add(b);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(NodeSet(batch[0].begin(), batch[0].end()), a);
  EXPECT_EQ(NodeSet(batch[1].begin(), batch[1].end()), b);
  std::vector<NodeSet> replayed;
  batch.for_each([&](std::span<const NodeId> c) {
    replayed.emplace_back(c.begin(), c.end());
  });
  EXPECT_EQ(replayed, (std::vector<NodeSet>{a, b}));
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace kcc
