#include "clique/parallel_cliques.h"

#include <gtest/gtest.h>

#include "clique/bron_kerbosch.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::random_graph;

class ParallelCliquesThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelCliquesThreads, MatchesSequentialExactly) {
  ThreadPool pool(GetParam());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = random_graph(60, 0.15, seed);
    EXPECT_EQ(parallel_maximal_cliques(g, pool), maximal_cliques(g))
        << "seed " << seed << " threads " << GetParam();
  }
}

TEST_P(ParallelCliquesThreads, MinSizeRespected) {
  ThreadPool pool(GetParam());
  const Graph g = random_graph(50, 0.2, 3);
  EXPECT_EQ(parallel_maximal_cliques(g, pool, 3), maximal_cliques(g, 3));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParallelCliquesThreads,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelCliques, EmptyGraph) {
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_maximal_cliques(Graph{}, pool).empty());
}

TEST(ParallelCliques, DenseGraph) {
  ThreadPool pool(4);
  const Graph g = random_graph(40, 0.6, 11);
  EXPECT_EQ(parallel_maximal_cliques(g, pool), maximal_cliques(g));
}

TEST(ParallelCliques, RepeatedRunsIdentical) {
  ThreadPool pool(8);
  const Graph g = random_graph(80, 0.1, 42);
  const auto first = parallel_maximal_cliques(g, pool);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parallel_maximal_cliques(g, pool), first);
  }
}

}  // namespace
}  // namespace kcc
