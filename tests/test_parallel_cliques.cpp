#include "clique/parallel_cliques.h"

#include <gtest/gtest.h>

#include "clique/bron_kerbosch.h"
#include "clique/clique_stream.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::random_graph;

class ParallelCliquesThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelCliquesThreads, MatchesSequentialExactly) {
  ThreadPool pool(GetParam());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = random_graph(60, 0.15, seed);
    EXPECT_EQ(parallel_maximal_cliques(g, pool), maximal_cliques(g))
        << "seed " << seed << " threads " << GetParam();
  }
}

TEST_P(ParallelCliquesThreads, MinSizeRespected) {
  ThreadPool pool(GetParam());
  const Graph g = random_graph(50, 0.2, 3);
  EXPECT_EQ(parallel_maximal_cliques(g, pool, 3), maximal_cliques(g, 3));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParallelCliquesThreads,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelCliques, EmptyGraph) {
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_maximal_cliques(Graph{}, pool).empty());
}

TEST(ParallelCliques, DenseGraph) {
  ThreadPool pool(4);
  const Graph g = random_graph(40, 0.6, 11);
  EXPECT_EQ(parallel_maximal_cliques(g, pool), maximal_cliques(g));
}

TEST(ParallelCliques, RepeatedRunsIdentical) {
  ThreadPool pool(8);
  const Graph g = random_graph(80, 0.1, 42);
  const auto first = parallel_maximal_cliques(g, pool);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parallel_maximal_cliques(g, pool), first);
  }
}

// Streaming enumerator: same cliques in the same order as the batch
// enumerator, for any window size and thread count.
std::vector<NodeSet> collect_stream(const Graph& g, std::size_t threads,
                                    std::size_t window,
                                    std::size_t min_size = 1) {
  ThreadPool pool(threads);
  CliqueStreamOptions options;
  options.min_size = min_size;
  options.window_positions = window;
  std::vector<NodeSet> out;
  stream_maximal_cliques(g, pool, options,
                         [&](NodeSet&& c) { out.push_back(std::move(c)); });
  return out;
}

TEST(CliqueStream, MatchesBatchEnumeratorAcrossWindowSizes) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_graph(60, 0.15, seed);
    const auto batch = parallel_maximal_cliques(g, pool);
    for (std::size_t window : {1u, 3u, 16u, 1000u}) {
      EXPECT_EQ(collect_stream(g, 4, window), batch)
          << "seed " << seed << " window " << window;
    }
  }
}

TEST(CliqueStream, MatchesAcrossThreadCounts) {
  const Graph g = random_graph(50, 0.25, 8);
  const auto expected = collect_stream(g, 1, 7);
  for (std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(collect_stream(g, threads, 7), expected)
        << "threads " << threads;
  }
}

TEST(CliqueStream, MinSizeRespected) {
  ThreadPool pool(4);
  const Graph g = random_graph(50, 0.2, 3);
  EXPECT_EQ(collect_stream(g, 4, 16, 3), maximal_cliques(g, 3));
}

TEST(CliqueStream, ReportsWindowBoundariesInOrder) {
  const Graph g = random_graph(40, 0.2, 1);
  ThreadPool pool(2);
  CliqueStreamOptions options;
  options.window_positions = 7;  // 40 positions -> 6 windows
  std::vector<std::size_t> boundaries;
  const std::size_t windows = stream_maximal_cliques(
      g, pool, options, [](NodeSet&&) {},
      [&](std::size_t done) { boundaries.push_back(done); });
  EXPECT_EQ(windows, 6u);
  ASSERT_EQ(boundaries.size(), 6u);
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    EXPECT_EQ(boundaries[i], i + 1);
  }
}

TEST(CliqueStream, EmptyGraph) {
  EXPECT_TRUE(collect_stream(Graph{}, 2, 8).empty());
}

}  // namespace
}  // namespace kcc
