#include "metrics/similarity.h"

#include <gtest/gtest.h>

#include "baselines/kcore.h"
#include "common/error.h"
#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

TEST(Jaccard, Basics) {
  EXPECT_DOUBLE_EQ(jaccard_index({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_index({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_index({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(jaccard_index({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_index({1}, {}), 0.0);
}

TEST(Jaccard, UnsortedThrows) {
  EXPECT_THROW(jaccard_index({2, 1}, {1, 2}), Error);
}

TEST(Omega, IdenticalCoversAreOne) {
  const std::vector<NodeSet> cover{{0, 1, 2}, {3, 4}, {2, 5, 6}};
  EXPECT_DOUBLE_EQ(omega_index(cover, cover, 10), 1.0);
}

TEST(Omega, IndependentOfCommunityOrder) {
  const std::vector<NodeSet> a{{0, 1, 2}, {3, 4, 5}};
  const std::vector<NodeSet> b{{3, 4, 5}, {0, 1, 2}};
  EXPECT_DOUBLE_EQ(omega_index(a, b, 6), 1.0);
}

TEST(Omega, DisagreementScoresBelowOne) {
  const std::vector<NodeSet> a{{0, 1, 2, 3}};
  const std::vector<NodeSet> b{{0, 1}, {2, 3}};
  const double omega = omega_index(a, b, 8);
  EXPECT_LT(omega, 1.0);
}

TEST(Omega, EmptyCoversAgree) {
  // Both covers place every pair together 0 times -> degenerate perfect
  // agreement.
  EXPECT_DOUBLE_EQ(omega_index({}, {}, 5), 1.0);
}

TEST(Omega, NeedsTwoNodes) {
  EXPECT_THROW(omega_index({}, {}, 1), Error);
}

TEST(Omega, CpmAgreesWithItselfAcrossThreadCounts) {
  const Graph g = testing::random_graph(40, 0.2, 5);
  CpmOptions one, eight;
  one.threads = 1;
  eight.threads = 8;
  const CpmResult a = run_cpm(g, one);
  const CpmResult b = run_cpm(g, eight);
  std::vector<NodeSet> cover_a, cover_b;
  for (const auto& c : a.at(3).communities) cover_a.push_back(c.nodes);
  for (const auto& c : b.at(3).communities) cover_b.push_back(c.nodes);
  EXPECT_DOUBLE_EQ(omega_index(cover_a, cover_b, g.num_nodes()), 1.0);
}

TEST(Omega, CpmVsKCoreDiffersButCorrelates) {
  // K5 {0..4} + triangle {5,6,7} bridged by edge 4-5. CPM at k=3 covers
  // both dense zones; the 3-core peels the triangle away, so the covers
  // disagree on the triangle pairs but agree on the K5 pairs.
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  }
  b.add_edge(5, 6);
  b.add_edge(5, 7);
  b.add_edge(6, 7);
  b.add_edge(4, 5);
  const Graph g = b.build();

  const CpmResult cpm = run_cpm(g);
  std::vector<NodeSet> cpm_cover;
  for (const auto& c : cpm.at(3).communities) cpm_cover.push_back(c.nodes);
  ASSERT_EQ(cpm_cover.size(), 2u);
  const auto kcore_cover = kcore_components(g, 3);
  ASSERT_EQ(kcore_cover.size(), 1u);  // only the K5 survives
  const double omega = omega_index(cpm_cover, kcore_cover, g.num_nodes());
  EXPECT_LT(omega, 1.0);
  EXPECT_GT(omega, 0.0);  // but far from independent
}

TEST(BestMatches, FindsHighestJaccard) {
  const std::vector<NodeSet> from{{0, 1, 2}, {5, 6}};
  const std::vector<NodeSet> to{{0, 1}, {5, 6, 7}, {8}};
  const auto matches = best_matches(from, to);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].index, 0);
  EXPECT_DOUBLE_EQ(matches[0].jaccard, 2.0 / 3.0);
  EXPECT_EQ(matches[1].index, 1);
  EXPECT_DOUBLE_EQ(matches[1].jaccard, 2.0 / 3.0);
}

TEST(BestMatches, EmptyTargets) {
  const auto matches = best_matches({{0, 1}}, {});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].index, -1);
}

}  // namespace
}  // namespace kcc
