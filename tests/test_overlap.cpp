#include "metrics/overlap.h"

#include <gtest/gtest.h>

#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::overlapping_cliques;
using testing::random_graph;

Community make_community(std::size_t k, CommunityId id, NodeSet nodes) {
  Community c;
  c.k = k;
  c.id = id;
  c.nodes = std::move(nodes);
  return c;
}

TEST(Overlap, BasicCounts) {
  const auto a = make_community(3, 0, {1, 2, 3, 4});
  const auto b = make_community(3, 1, {3, 4, 5});
  EXPECT_EQ(community_overlap(a, b), 2u);
  EXPECT_DOUBLE_EQ(overlap_fraction(a, b), 2.0 / 3.0);
}

TEST(Overlap, FullContainmentGivesFractionOne) {
  const auto a = make_community(3, 0, {1, 2, 3, 4, 5});
  const auto b = make_community(3, 1, {2, 3});
  EXPECT_DOUBLE_EQ(overlap_fraction(a, b), 1.0);
}

TEST(Overlap, DisjointIsZero) {
  const auto a = make_community(3, 0, {1, 2});
  const auto b = make_community(3, 1, {3, 4});
  EXPECT_DOUBLE_EQ(overlap_fraction(a, b), 0.0);
}

TEST(Overlap, EmptyCommunityThrows) {
  const auto a = make_community(3, 0, {});
  const auto b = make_community(3, 1, {1});
  EXPECT_THROW(overlap_fraction(a, b), Error);
}

TEST(OverlapStats, TwoFiveCliques) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  const CommunityTree tree = CommunityTree::build(r);
  const auto stats = overlap_stats(r, main_ids_by_k(tree));
  ASSERT_EQ(stats.size(), r.max_k - r.min_k + 1);
  // Only k = 5 has a parallel community; it shares 3 of 5 with the main.
  for (const auto& s : stats) {
    if (s.k == 5) {
      EXPECT_EQ(s.parallel_count, 1u);
      EXPECT_DOUBLE_EQ(s.mean_parallel_vs_main, 3.0 / 5.0);
      EXPECT_EQ(s.disjoint_from_main, 0u);
      EXPECT_EQ(s.parallel_parallel_pairs, 0u);
    } else {
      EXPECT_EQ(s.parallel_count, 0u);
    }
  }
}

TEST(OverlapStats, MainIdVectorMismatchThrows) {
  const CpmResult r = run_cpm(overlapping_cliques(4, 4, 2));
  EXPECT_THROW(overlap_stats(r, {}), Error);
}

TEST(MainIdsByK, MatchesTreeMains) {
  const Graph g = random_graph(30, 0.3, 12);
  const CpmResult r = run_cpm(g);
  const CommunityTree tree = CommunityTree::build(r);
  const auto main_ids = main_ids_by_k(tree);
  ASSERT_EQ(main_ids.size(), r.by_k.size());
  for (std::size_t i = 0; i < main_ids.size(); ++i) {
    const int idx = tree.index_of(r.min_k + i, main_ids[i]);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(tree.nodes()[idx].is_main);
  }
}

TEST(Aggregate, MeanVarianceMin) {
  std::vector<OverlapStatsAtK> stats(3);
  stats[0].k = 3;
  stats[0].parallel_count = 2;
  stats[0].mean_parallel_vs_main = 0.5;
  stats[1].k = 4;
  stats[1].parallel_count = 1;
  stats[1].mean_parallel_vs_main = 0.7;
  stats[2].k = 5;
  stats[2].parallel_count = 0;  // excluded from the aggregate
  stats[2].mean_parallel_vs_main = 0.0;
  const auto agg = aggregate_parallel_vs_main(stats);
  EXPECT_EQ(agg.k_count, 2u);
  EXPECT_DOUBLE_EQ(agg.mean, 0.6);
  EXPECT_NEAR(agg.variance, 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(agg.min, 0.5);
}

TEST(Aggregate, EmptyStats) {
  const auto agg = aggregate_parallel_vs_main({});
  EXPECT_EQ(agg.k_count, 0u);
  EXPECT_DOUBLE_EQ(agg.mean, 0.0);
}

// Property: every parallel community's overlap fraction with the main is in
// [0, 1], and the per-k mean respects those bounds.
TEST(OverlapStats, FractionsBounded) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_graph(40, 0.2, seed);
    const CpmResult r = run_cpm(g);
    if (r.max_k < r.min_k) continue;
    const CommunityTree tree = CommunityTree::build(r);
    for (const auto& s : overlap_stats(r, main_ids_by_k(tree))) {
      EXPECT_GE(s.mean_parallel_vs_main, 0.0);
      EXPECT_LE(s.mean_parallel_vs_main, 1.0);
      EXPECT_GE(s.mean_parallel_parallel, 0.0);
      EXPECT_LE(s.mean_parallel_parallel, 1.0);
      EXPECT_LE(s.disjoint_from_main, s.parallel_count);
    }
  }
}

}  // namespace
}  // namespace kcc
