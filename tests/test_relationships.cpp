#include "data/relationships.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "cpm/cpm.h"
#include "synth/as_topology.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

TEST(Relationships, Basics) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  const RelationshipMap rel(
      g, {LinkType::kCustomerProvider, LinkType::kPeering});
  EXPECT_EQ(rel.type(0, 1), LinkType::kCustomerProvider);
  EXPECT_EQ(rel.type(1, 0), LinkType::kCustomerProvider);
  EXPECT_EQ(rel.type(2, 1), LinkType::kPeering);
  EXPECT_THROW(rel.type(0, 2), Error);
  const auto [cp, peering] = rel.totals();
  EXPECT_EQ(cp, 1u);
  EXPECT_EQ(peering, 1u);
}

TEST(Relationships, SizeMismatchThrows) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(RelationshipMap(g, {LinkType::kPeering}), Error);
}

TEST(Relationships, Names) {
  EXPECT_STREQ(link_type_name(LinkType::kPeering), "peering");
  EXPECT_STREQ(link_type_name(LinkType::kCustomerProvider),
               "customer-provider");
}

TEST(Relationships, PeeringFraction) {
  // Triangle 0-1-2 where 0-1 is customer-provider, rest peering; node 3
  // outside.
  const Graph g = make_graph(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  const RelationshipMap rel(
      g, {LinkType::kCustomerProvider, LinkType::kPeering,
          LinkType::kPeering, LinkType::kCustomerProvider});
  EXPECT_DOUBLE_EQ(peering_fraction(g, rel, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(peering_fraction(g, rel, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(peering_fraction(g, rel, {0, 3}), 0.0);  // no internal
}

TEST(Relationships, PeeringByKSeries) {
  const Graph g = complete_graph(4);
  const RelationshipMap rel(
      g, std::vector<LinkType>(6, LinkType::kPeering));
  const CpmResult cpm = run_cpm(g);
  const auto series = peering_by_k(g, rel, cpm);
  ASSERT_EQ(series.size(), 3u);  // k = 2, 3, 4
  for (const auto& row : series) {
    EXPECT_DOUBLE_EQ(row.mean_peering_fraction, 1.0);
  }
}

TEST(Relationships, GeneratorAnnotatesEveryEdge) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  EXPECT_EQ(eco.relationships.edge_count(),
            eco.topology.graph.num_edges());
  const auto [cp, peering] = eco.relationships.totals();
  EXPECT_GT(cp, 0u);
  EXPECT_GT(peering, 0u);
  EXPECT_EQ(cp + peering, eco.topology.graph.num_edges());
}

TEST(Relationships, Tier1MeshIsPeering) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  const SynthParams p = SynthParams::test_scale();
  for (NodeId i = 0; i < p.num_tier1; ++i) {
    for (NodeId j = i + 1; j < p.num_tier1; ++j) {
      EXPECT_EQ(eco.relationships.type(i, j), LinkType::kPeering);
    }
  }
}

TEST(Relationships, ApexCliqueIsPeeringFabric) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  const double fraction = peering_fraction(
      eco.topology.graph, eco.relationships, eco.apex_clique);
  EXPECT_GT(fraction, 0.9);  // the crown is settlement-free fabric
}

TEST(Relationships, StubEdgesAreMostlyCustomerProvider) {
  const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  const Graph& g = eco.topology.graph;
  std::size_t cp = 0, total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (eco.roles[v] != AsRole::kStub || eco.ixps.is_on_ixp(v)) continue;
    for (NodeId w : g.neighbors(v)) {
      if (v < w || eco.roles[w] != AsRole::kStub) {
        ++total;
        if (eco.relationships.type(v, w) == LinkType::kCustomerProvider) {
          ++cp;
        }
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(double(cp) / double(total), 0.5);
}

}  // namespace
}  // namespace kcc
