// The checker itself gets checked: the invariant oracles must reject
// hand-corrupted results, the generators must be deterministic, and the
// ddmin shrinker must reach 1-minimal reproducers on synthetic predicates.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "check/differential.h"
#include "check/generators.h"
#include "check/invariants.h"
#include "check/shrink.h"
#include "common/error.h"
#include "cpm/cpm.h"
#include "cpm/engine.h"
#include "io/edge_list.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::make_graph;
using testing::overlapping_cliques;
using testing::random_graph;

cpm::Result run_engine(const Graph& g) {
  return cpm::Engine(cpm::Options{}).run(g);
}

// ------------------------------------------------------------- invariants

TEST(CheckInvariants, CleanResultPasses) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const check::Report report = check::check_invariants(g, run_engine(g), {});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.invariants_checked, 0u);
}

TEST(CheckInvariants, CatchesDroppedCommunityNode) {
  const Graph g = overlapping_cliques(5, 5, 3);
  cpm::Result result = run_engine(g);
  result.cpm.by_k[0].communities[0].nodes.pop_back();
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
}

TEST(CheckInvariants, CatchesForeignCommunityNode) {
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {1, 2}, {3, 4}});
  cpm::Result result = run_engine(g);
  // Smuggle the isolated-edge node into the triangle's k=3 community.
  auto& nodes = result.cpm.at(3).communities[0].nodes;
  nodes.push_back(4);
  std::sort(nodes.begin(), nodes.end());
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
}

TEST(CheckInvariants, CatchesCorruptCliqueMap) {
  const Graph g = overlapping_cliques(5, 4, 2);
  cpm::Result result = run_engine(g);
  auto& map = result.cpm.by_k[0].community_of_clique;
  ASSERT_FALSE(map.empty());
  map[0] = map[0] == 0 ? 1 : 0;
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
}

TEST(CheckInvariants, CatchesNonMaximalClique) {
  const Graph g = testing::complete_graph(5);
  cpm::Result result = run_engine(g);
  ASSERT_FALSE(result.cpm.cliques.empty());
  result.cpm.cliques[0].pop_back();  // K5 minus a node is not maximal
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
}

TEST(CheckInvariants, CatchesCanonicalOrderViolation) {
  // Triangle and K4: two k=2 communities, canonically K4 first. Swapping
  // them violates both the (size desc, lex) order and the id stamps.
  const Graph g = make_graph(7, {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5},
                                 {3, 6}, {4, 5}, {4, 6}, {5, 6}});
  cpm::Result result = run_engine(g);
  auto& communities = result.cpm.at(2).communities;
  ASSERT_EQ(communities.size(), 2u);
  std::swap(communities[0], communities[1]);
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
}

TEST(CheckInvariants, CatchesBrokenTree) {
  const Graph g = random_graph(30, 0.4, 3);
  cpm::Result result = run_engine(g);
  ASSERT_TRUE(result.has_tree);
  ASSERT_FALSE(result.tree.nodes().empty());
  auto& node = const_cast<TreeNode&>(result.tree.nodes()[0]);
  node.is_main = !node.is_main;
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
}

// ------------------------------------------------------------- generators

TEST(CheckGenerators, DeterministicInSeedAndIndex) {
  for (std::size_t index : {0u, 3u, 10u, 11u, 14u, 23u}) {
    const check::TestGraph a = check::generate_graph(42, index);
    const check::TestGraph b = check::generate_graph(42, index);
    EXPECT_EQ(a.name, b.name) << index;
    EXPECT_EQ(a.num_nodes, b.num_nodes) << index;
    EXPECT_EQ(a.edges, b.edges) << index;
  }
  // Different seeds diverge on the random families (not the fixed shapes).
  const check::TestGraph a = check::generate_graph(1, 10);
  const check::TestGraph b = check::generate_graph(2, 10);
  EXPECT_NE(a.edges, b.edges);
}

TEST(CheckGenerators, DegenerateShapesComeFirstAndBuild) {
  ASSERT_GE(check::degenerate_graph_count(), 8u);
  for (std::size_t i = 0; i < check::degenerate_graph_count(); ++i) {
    const check::TestGraph g = check::generate_graph(7, i);
    const Graph built = g.build();  // must not throw, self-loops filtered
    EXPECT_GE(built.num_nodes(), 0u) << g.name;
  }
  EXPECT_EQ(check::generate_graph(7, 0).name,
            check::generate_graph(99, 0).name)
      << "degenerate shapes are seed-independent";
}

TEST(CheckGenerators, EdgeListRoundTripsThroughLoader) {
  const check::TestGraph g = check::generate_graph(5, 12);
  std::istringstream in(g.to_edge_list());
  const LabeledGraph loaded = read_edge_list(in);
  EXPECT_EQ(loaded.graph.num_edges(), g.build().num_edges());
}

// ---------------------------------------------------------------- shrink

TEST(CheckShrink, FindsSingleCulpritEdge) {
  // Predicate: "fails" iff the graph still contains edge (3, 4).
  check::TestGraph g;
  g.name = "culprit";
  g.num_nodes = 10;
  for (NodeId v = 1; v < 10; ++v) {
    g.edges.emplace_back(v - 1, v);
  }
  const check::ShrinkResult shrunk = check::shrink(g, [](const check::TestGraph& c) {
    return std::find(c.edges.begin(), c.edges.end(),
                     check::Edge{3, 4}) != c.edges.end();
  });
  EXPECT_EQ(shrunk.graph.edges.size(), 1u);
  EXPECT_TRUE(shrunk.one_minimal);
  EXPECT_GT(shrunk.evaluations, 0u);
}

TEST(CheckShrink, CompactsAwayIsolatedNodes) {
  check::TestGraph g;
  g.name = "sparse-ids";
  g.num_nodes = 1000;
  g.edges = {{900, 901}, {10, 20}};
  const check::ShrinkResult shrunk = check::shrink(
      g, [](const check::TestGraph& c) { return !c.edges.empty(); });
  EXPECT_EQ(shrunk.graph.edges.size(), 1u);
  EXPECT_LE(shrunk.graph.num_nodes, 2u);
}

TEST(CheckShrink, RejectsPassingInput) {
  check::TestGraph g;
  g.num_nodes = 2;
  g.edges = {{0, 1}};
  EXPECT_THROW(
      check::shrink(g, [](const check::TestGraph&) { return false; }), Error);
}

TEST(CheckShrink, IsDeterministic) {
  check::TestGraph g = check::generate_graph(9, 10);
  auto predicate = [](const check::TestGraph& c) {
    return c.edges.size() >= 3;
  };
  const check::ShrinkResult a = check::shrink(g, predicate);
  const check::ShrinkResult b = check::shrink(g, predicate);
  EXPECT_EQ(a.graph.edges, b.graph.edges);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// ---------------------------------------------------------- differential

TEST(CheckDifferential, CleanGraphRunsWholeMatrix) {
  const check::TestGraph g = check::generate_graph(3, 8);  // overlap shape
  check::DiffOptions options;
  options.threads = 2;
  const check::DiffOutcome outcome = check::run_differential(g, options);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
  // Full + restricted groups over 7 variants, plus the reference engine
  // somewhere in the full group (the graph is small enough).
  EXPECT_GE(outcome.variants_run, 14u);
  EXPECT_GT(outcome.invariants_checked, 0u);
  EXPECT_FALSE(outcome.fault_injected);
}

TEST(CheckDifferential, ReportsFirstDivergentLine) {
  // No fault injection here: corrupt a result by hand and make sure the
  // invariant path (not just the diff path) names the failing invariant.
  const Graph g = overlapping_cliques(4, 4, 2);
  cpm::Result result = run_engine(g);
  result.cpm.by_k[0].communities[0].nodes.pop_back();
  const check::Report report = check::check_invariants(g, result, {});
  ASSERT_FALSE(report.ok());
  EXPECT_FALSE(report.failures[0].invariant.empty());
  EXPECT_FALSE(report.failures[0].detail.empty());
}

}  // namespace
}  // namespace kcc
