#include <gtest/gtest.h>

#include "baselines/gce.h"
#include "baselines/kcore.h"
#include "baselines/kdense.h"
#include "common/set_ops.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::make_graph;
using testing::random_graph;

TEST(KCore, CompleteGraph) {
  const auto d = kcore_decomposition(complete_graph(5));
  EXPECT_EQ(d.max_core, 4u);
  EXPECT_EQ(d.core_nodes(4).size(), 5u);
  EXPECT_TRUE(d.core_nodes(5).empty());
}

TEST(KCore, CycleWithPendant) {
  // Cycle 0-1-2-3-0 plus pendant 4 on node 0.
  const Graph g = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}});
  const auto d = kcore_decomposition(g);
  EXPECT_EQ(d.max_core, 2u);
  EXPECT_EQ(d.core_number[4], 1u);
  EXPECT_EQ(d.core_nodes(2), (NodeSet{0, 1, 2, 3}));
  const auto shells = d.shell_sizes();
  ASSERT_EQ(shells.size(), 3u);
  EXPECT_EQ(shells[1], 1u);
  EXPECT_EQ(shells[2], 4u);
}

TEST(KCore, ComponentsArePartition) {
  const Graph g = random_graph(60, 0.1, 13);
  for (std::uint32_t k = 1; k <= 3; ++k) {
    const auto comps = kcore_components(g, k);
    NodeSet all;
    for (const auto& c : comps) {
      all.insert(all.end(), c.begin(), c.end());
    }
    const std::size_t total = all.size();
    sort_unique(all);
    EXPECT_EQ(all.size(), total) << "components overlap at k " << k;
  }
}

TEST(KDense, TriangleSurvivesK3) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto sub = kdense_subgraph(g, 3);
  EXPECT_EQ(sub.nodes, (NodeSet{0, 1, 2}));
  EXPECT_EQ(sub.edges.size(), 3u);  // pendant edge peeled
}

TEST(KDense, K2KeepsEverything) {
  const Graph g = make_graph(4, {{0, 1}, {2, 3}});
  const auto sub = kdense_subgraph(g, 2);
  EXPECT_EQ(sub.nodes.size(), 4u);
  EXPECT_EQ(sub.edges.size(), 2u);
}

TEST(KDense, CompleteGraphSurvivesUpToN) {
  const Graph g = complete_graph(6);
  // Every edge has 4 common neighbours -> survives k-2 <= 4, i.e. k <= 6.
  EXPECT_EQ(kdense_subgraph(g, 6).edges.size(), 15u);
  EXPECT_TRUE(kdense_subgraph(g, 7).edges.empty());
}

TEST(KDense, CascadingPeel) {
  // Two triangles sharing one node: at k=3 both survive (each edge has one
  // common neighbour); a path graph dies entirely.
  const Graph path = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(kdense_subgraph(path, 3).edges.empty());
}

TEST(KDense, ComponentsOfTwoSeparateDenseZones) {
  GraphBuilder b;
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  for (NodeId i = 4; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) b.add_edge(i, j);
  }
  b.add_edge(3, 4);  // bridge
  const auto comps = kdense_components(b.build(), 4);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (NodeSet{0, 1, 2, 3}));
  EXPECT_EQ(comps[1], (NodeSet{4, 5, 6, 7}));
}

TEST(KDense, InvalidKThrows) {
  EXPECT_THROW(kdense_subgraph(complete_graph(3), 1), Error);
}

TEST(KDense, EdgeDensenessMonotone) {
  const Graph g = random_graph(25, 0.3, 31);
  const auto denseness = edge_denseness(g);
  const auto edges = g.edges();
  ASSERT_EQ(denseness.size(), edges.size());
  // Cross-check: edge survives the k-dense subgraph iff denseness >= k.
  for (std::uint32_t k = 2; k <= 5; ++k) {
    const auto sub = kdense_subgraph(g, k);
    std::size_t expected = 0;
    for (auto d : denseness) expected += d >= k ? 1 : 0;
    EXPECT_EQ(sub.edges.size(), expected) << "k " << k;
  }
}

TEST(Gce, FitnessPrefersInternalLinks) {
  // Isolated clique: fitness 1 (k_out = 0, alpha = 1).
  const Graph iso = complete_graph(4);
  EXPECT_DOUBLE_EQ(gce_fitness(iso, {0, 1, 2, 3}, 1.0), 1.0);

  // Tier-1-like: triangle with many external customers -> fitness tiny.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  NodeId next = 3;
  for (NodeId hub = 0; hub < 3; ++hub) {
    for (int i = 0; i < 20; ++i) b.add_edge(hub, next++);
  }
  const Graph tier1 = b.build();
  EXPECT_LT(gce_fitness(tier1, {0, 1, 2}, 1.0), 0.15);
}

TEST(Gce, FitnessOfEmptySetIsZero) {
  EXPECT_DOUBLE_EQ(gce_fitness(complete_graph(3), {}, 1.0), 0.0);
}

TEST(Gce, FindsIsolatedCliques) {
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  }
  for (NodeId i = 5; i < 9; ++i) {
    for (NodeId j = i + 1; j < 9; ++j) b.add_edge(i, j);
  }
  const auto communities = greedy_clique_expansion(b.build());
  ASSERT_EQ(communities.size(), 2u);
  EXPECT_EQ(communities[0], (NodeSet{0, 1, 2, 3, 4}));
  EXPECT_EQ(communities[1], (NodeSet{5, 6, 7, 8}));
}

TEST(Gce, ExpandsSeedIntoDenseZone) {
  // A 6-clique missing one edge: the 4-clique seeds should expand to cover
  // (most of) the dense zone.
  GraphBuilder b;
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) {
      if (!(i == 0 && j == 5)) b.add_edge(i, j);
    }
  }
  const auto communities = greedy_clique_expansion(b.build());
  ASSERT_GE(communities.size(), 1u);
  EXPECT_GE(communities[0].size(), 5u);
}

TEST(Gce, MaxSeedsBoundsWork) {
  const Graph g = random_graph(30, 0.3, 8);
  GceOptions options;
  options.max_seeds = 3;
  const auto communities = greedy_clique_expansion(g, options);
  EXPECT_LE(communities.size(), 3u);
}

TEST(Gce, InvalidOptionsThrow) {
  GceOptions options;
  options.min_clique_size = 1;
  EXPECT_THROW(greedy_clique_expansion(complete_graph(3), options), Error);
}

}  // namespace
}  // namespace kcc
