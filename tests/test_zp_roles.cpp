#include "metrics/zp_roles.h"

#include <gtest/gtest.h>

#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

CommunitySet single_community(std::size_t k, NodeSet nodes) {
  CommunitySet set;
  set.k = k;
  Community c;
  c.k = k;
  c.id = 0;
  c.nodes = std::move(nodes);
  set.communities.push_back(std::move(c));
  return set;
}

TEST(ZpRoles, Classification) {
  EXPECT_EQ(classify_zp(0.0, 0.0), ZpRole::kUltraPeripheral);
  EXPECT_EQ(classify_zp(0.0, 0.5), ZpRole::kPeripheral);
  EXPECT_EQ(classify_zp(0.0, 0.7), ZpRole::kConnector);
  EXPECT_EQ(classify_zp(0.0, 0.9), ZpRole::kKinless);
  EXPECT_EQ(classify_zp(3.0, 0.1), ZpRole::kProvincialHub);
  EXPECT_EQ(classify_zp(3.0, 0.5), ZpRole::kConnectorHub);
  EXPECT_EQ(classify_zp(3.0, 0.9), ZpRole::kKinlessHub);
}

TEST(ZpRoles, RoleNames) {
  EXPECT_STREQ(zp_role_name(ZpRole::kUltraPeripheral), "ultra-peripheral");
  EXPECT_STREQ(zp_role_name(ZpRole::kKinlessHub), "kinless-hub");
}

TEST(ZpRoles, SymmetricCliqueHasZeroZ) {
  // In a clique, every internal degree equals the mean: z = 0 everywhere.
  const Graph g = complete_graph(5);
  const auto scores = zp_scores(g, single_community(3, {0, 1, 2, 3, 4}));
  ASSERT_EQ(scores.size(), 5u);
  for (const auto& s : scores) {
    EXPECT_DOUBLE_EQ(s.z, 0.0);
    EXPECT_DOUBLE_EQ(s.participation, 0.0);  // all links inside
  }
}

TEST(ZpRoles, HubHasPositiveZ) {
  // Star inside the community: hub 0 has higher internal degree.
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto scores = zp_scores(g, single_community(2, {0, 1, 2, 3, 4}));
  double hub_z = 0.0, leaf_z = 0.0;
  for (const auto& s : scores) {
    if (s.node == 0) {
      hub_z = s.z;
    } else {
      leaf_z = s.z;
    }
  }
  EXPECT_GT(hub_z, 1.5);
  EXPECT_LT(leaf_z, 0.0);
}

TEST(ZpRoles, ParticipationSplitsAcrossCommunities) {
  // Node 2 belongs to two triangles; its links split 50/50.
  const Graph g =
      make_graph(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  const CpmResult r = run_cpm(g);
  const auto scores = zp_scores(g, r.at(3));
  double p2 = -1.0;
  std::size_t rows_for_2 = 0;
  for (const auto& s : scores) {
    if (s.node == 2) {
      p2 = s.participation;
      ++rows_for_2;
    }
  }
  ASSERT_EQ(rows_for_2, 2u);  // one row per membership
  EXPECT_NEAR(p2, 0.5, 1e-9);
}

TEST(ZpRoles, ExternalLinksRaiseParticipation) {
  // Triangle community with node 0 having 3 external pendants.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 3);
  b.add_edge(0, 4);
  b.add_edge(0, 5);
  const Graph g = b.build();
  const auto scores = zp_scores(g, single_community(3, {0, 1, 2}));
  for (const auto& s : scores) {
    if (s.node == 0) {
      // 2/5 inside, 3/5 outside: P = 1 - (0.4^2 + 0.6^2) = 0.48.
      EXPECT_NEAR(s.participation, 0.48, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(s.participation, 0.0);
    }
  }
}

TEST(ZpRoles, HistogramCountsAllScores) {
  const Graph g = testing::random_graph(30, 0.3, 3);
  const CpmResult r = run_cpm(g);
  const auto scores = zp_scores(g, r.at(3));
  const auto histogram = zp_role_histogram(scores);
  ASSERT_EQ(histogram.size(), 7u);
  std::size_t total = 0;
  for (auto h : histogram) total += h;
  EXPECT_EQ(total, scores.size());
}

TEST(ZpRoles, IsolatedNodeCommunity) {
  GraphBuilder b;
  b.ensure_nodes(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto scores = zp_scores(g, single_community(2, {2}));
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0].z, 0.0);
  EXPECT_DOUBLE_EQ(scores[0].participation, 0.0);
}

}  // namespace
}  // namespace kcc
