#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "io/csv.h"

namespace kcc {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, FormatsDoublesAndInts) {
  TextTable t({"i", "d"});
  t.add(42, 3.14159);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(percent(0.892, 1), "89.2%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "positional"};
  CliArgs args(4, argv, {"alpha", "flag"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv, {"x"});
  EXPECT_EQ(args.get_int("x", 9), 9);
  EXPECT_EQ(args.get_string("x", "d"), "d");
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.5), 0.5);
  EXPECT_FALSE(args.has("x"));
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(CliArgs(2, argv, {"known"}), Error);
}

TEST(Cli, BadNumberThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv, {"n"});
  EXPECT_THROW(args.get_int("n", 0), Error);
  EXPECT_THROW(args.get_double("n", 0.0), Error);
}

TEST(Cli, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=maybe"};
  CliArgs args(4, argv, {"a", "b", "c"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_THROW(args.get_bool("c", false), Error);
}

TEST(Csv, EscapesSpecialCells) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside", "multi\nline"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(s.find("plain,"), std::string::npos);  // plain cells unquoted
}

TEST(Csv, ArityMismatchThrows) {
  CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), Error);
}

}  // namespace
}  // namespace kcc
