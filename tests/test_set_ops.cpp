#include "common/set_ops.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/types.h"

namespace kcc {
namespace {

TEST(SetOps, IsSortedUnique) {
  EXPECT_TRUE(is_sorted_unique<int>({}));
  EXPECT_TRUE(is_sorted_unique<int>({5}));
  EXPECT_TRUE(is_sorted_unique<int>({1, 2, 3}));
  EXPECT_FALSE(is_sorted_unique<int>({1, 1, 2}));
  EXPECT_FALSE(is_sorted_unique<int>({2, 1}));
}

TEST(SetOps, SortUnique) {
  std::vector<int> v{3, 1, 2, 3, 1};
  sort_unique(v);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(SetOps, SortUniqueEmpty) {
  std::vector<int> v;
  sort_unique(v);
  EXPECT_TRUE(v.empty());
}

TEST(SetOps, IntersectionSizeBasic) {
  const std::vector<int> a{1, 3, 5, 7};
  const std::vector<int> b{2, 3, 4, 5};
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_EQ(intersection_size(a, a), 4u);
  EXPECT_EQ(intersection_size(a, {}), 0u);
}

TEST(SetOps, IntersectionAtLeast) {
  const std::vector<int> a{1, 2, 3, 4, 5};
  const std::vector<int> b{3, 4, 5, 6, 7};
  EXPECT_TRUE(intersection_at_least(a, b, 0));
  EXPECT_TRUE(intersection_at_least(a, b, 3));
  EXPECT_FALSE(intersection_at_least(a, b, 4));
}

TEST(SetOps, IntersectionAtLeastEarlyExitMatchesExact) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> a, b;
    for (int i = 0; i < 30; ++i) {
      if (rng.next_bool(0.4)) a.push_back(i);
      if (rng.next_bool(0.4)) b.push_back(i);
    }
    const std::size_t exact = intersection_size(a, b);
    for (std::size_t t = 0; t <= 12; ++t) {
      EXPECT_EQ(intersection_at_least(a, b, t), exact >= t)
          << "trial " << trial << " threshold " << t;
    }
  }
}

TEST(SetOps, UnionIntersectionDifference) {
  const std::vector<int> a{1, 2, 4};
  const std::vector<int> b{2, 3, 4};
  EXPECT_EQ(set_union(a, b), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(set_intersection(a, b), (std::vector<int>{2, 4}));
  EXPECT_EQ(set_difference(a, b), (std::vector<int>{1}));
  EXPECT_EQ(set_difference(b, a), (std::vector<int>{3}));
}

TEST(SetOps, Subset) {
  EXPECT_TRUE(is_subset<int>({}, {1, 2}));
  EXPECT_TRUE(is_subset<int>({1, 2}, {1, 2, 3}));
  EXPECT_FALSE(is_subset<int>({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(is_subset<int>({1, 2}, {1, 2}));
}

TEST(SetOps, Contains) {
  const std::vector<int> v{1, 3, 5};
  EXPECT_TRUE(contains(v, 3));
  EXPECT_FALSE(contains(v, 4));
  EXPECT_FALSE(contains(std::vector<int>{}, 1));
}

TEST(SetOps, RandomizedAgainstStdSet) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::set<std::uint32_t> sa, sb;
    for (int i = 0; i < 40; ++i) {
      sa.insert(static_cast<std::uint32_t>(rng.next_below(60)));
      sb.insert(static_cast<std::uint32_t>(rng.next_below(60)));
    }
    const std::vector<std::uint32_t> a(sa.begin(), sa.end());
    const std::vector<std::uint32_t> b(sb.begin(), sb.end());
    std::set<std::uint32_t> expected_union = sa;
    expected_union.insert(sb.begin(), sb.end());
    EXPECT_EQ(set_union(a, b).size(), expected_union.size());
    std::size_t inter = 0;
    for (auto x : sa) inter += sb.count(x);
    EXPECT_EQ(intersection_size(a, b), inter);
  }
}

}  // namespace
}  // namespace kcc
