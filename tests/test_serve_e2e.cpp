// End-to-end serve smoke: spawn the real `kcc serve` binary on a snapshot,
// drive a scripted query mix through serve::Client, check every answer
// against the in-memory oracle, shut the daemon down remotely and require a
// clean exit code. The kcc binary path arrives via the KCC_BIN environment
// variable (tests/CMakeLists.txt sets it to $<TARGET_FILE:kcc>).

#include <gtest/gtest.h>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cpm/engine.h"
#include "io/snapshot.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "test_helpers.h"

extern char** environ;

namespace kcc {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("kcc_e2e_" + name))
      .string();
}

pid_t spawn_kcc(const std::vector<std::string>& args) {
  const char* bin = std::getenv("KCC_BIN");
  if (bin == nullptr) return -1;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, bin, nullptr, nullptr, argv.data(), environ);
  return rc == 0 ? pid : -1;
}

TEST(ServeE2E, DaemonAnswersMixAndShutsDownCleanly) {
  if (std::getenv("KCC_BIN") == nullptr) {
    GTEST_SKIP() << "KCC_BIN not set (run through ctest)";
  }

  // Build the oracle result and its snapshot in-process; the daemon serves
  // the very same bytes.
  const Graph g = testing::preferential_attachment_graph(70, 4, 13);
  const cpm::Result result = cpm::Engine(cpm::Options{}).run(g);
  const std::string snap = temp_path("mix.snap");
  const std::string sock = temp_path("mix.sock");
  snapshot::write_snapshot_file(snap, result);

  const pid_t pid =
      spawn_kcc({"serve", "--snapshot=" + snap, "--socket=" + sock});
  ASSERT_GT(pid, 0) << "failed to spawn kcc serve";

  {
    serve::Client client(sock, /*timeout_seconds=*/20.0);

    const serve::ServerInfo info = client.info();
    EXPECT_EQ(info.min_k, result.cpm.min_k);
    EXPECT_EQ(info.max_k, result.cpm.max_k);
    EXPECT_EQ(info.num_communities, result.cpm.total_communities());
    EXPECT_EQ(info.engine, result.engine_name);

    // Scripted mix vs the in-memory result: memberships for every node,
    // full node lists + ancestry for every community, a few overlaps.
    for (std::uint32_t node = 0; node < g.num_nodes(); ++node) {
      std::vector<serve::Membership> expected;
      for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
        for (const Community& c : result.cpm.at(k).communities) {
          if (std::binary_search(c.nodes.begin(), c.nodes.end(), node)) {
            expected.push_back({static_cast<std::uint32_t>(k), c.id});
          }
        }
      }
      EXPECT_EQ(client.membership(node), expected) << "node " << node;
    }
    for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
      for (const Community& c : result.cpm.at(k).communities) {
        EXPECT_EQ(client.community(k, c.id), c.nodes) << "k=" << k;
        const auto chain = client.ancestry(k, c.id);
        ASSERT_EQ(chain.size(), k - result.cpm.min_k + 1) << "k=" << k;
        EXPECT_EQ(chain.front(),
                  (serve::AncestryEntry{
                      static_cast<std::uint32_t>(k), c.id,
                      static_cast<std::uint32_t>(c.nodes.size())}));
      }
    }
    for (std::uint32_t u = 0; u < 10; ++u) {
      const auto o = client.overlap(u, u + 1);
      if (o.max_k > 0) {
        const auto nodes = client.community(o.max_k, o.community);
        EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), u));
        EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), u + 1));
      }
    }

    EXPECT_EQ(client.request_shutdown(), serve::Status::kOk);
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "daemon exit code";
  EXPECT_FALSE(std::filesystem::exists(sock)) << "socket not unlinked";
  std::remove(snap.c_str());
}

TEST(ServeE2E, ServeRefusesMissingAndCorruptSnapshots) {
  if (std::getenv("KCC_BIN") == nullptr) {
    GTEST_SKIP() << "KCC_BIN not set (run through ctest)";
  }
  const std::string sock = temp_path("bad.sock");

  // Missing snapshot: the daemon must exit non-zero, quickly.
  pid_t pid = spawn_kcc({"serve", "--snapshot=" + temp_path("nope.snap"),
                         "--socket=" + sock});
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);

  // Corrupt snapshot (truncated header): same contract.
  const std::string corrupt = temp_path("corrupt.snap");
  {
    std::ofstream out(corrupt, std::ios::binary);
    out << "KCCSNAP1 but far too short";
  }
  pid = spawn_kcc({"serve", "--snapshot=" + corrupt, "--socket=" + sock});
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
  std::remove(corrupt.c_str());
}

}  // namespace
}  // namespace kcc
