#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // Triangle {0,1,2} plus pendant 3.
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.to_parent, (NodeSet{0, 1, 2}));
}

TEST(InducedSubgraph, RelabelsDensely) {
  const Graph g = make_graph(10, {{2, 7}, {7, 9}, {2, 9}, {0, 1}});
  const auto sub = induced_subgraph(g, {2, 7, 9});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));  // 2-7
  EXPECT_TRUE(sub.graph.has_edge(1, 2));  // 7-9
  EXPECT_TRUE(sub.graph.has_edge(0, 2));  // 2-9
}

TEST(InducedSubgraph, LiftTranslatesBack) {
  const Graph g = make_graph(10, {{2, 7}, {7, 9}});
  const auto sub = induced_subgraph(g, {2, 7, 9});
  EXPECT_EQ(sub.lift({0, 2}), (NodeSet{2, 9}));
  EXPECT_TRUE(sub.lift({}).empty());
  EXPECT_THROW(sub.lift({5}), Error);
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g = make_graph(3, {{0, 1}});
  const auto sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
}

TEST(InducedSubgraph, UnsortedSelectionThrows) {
  const Graph g = make_graph(3, {{0, 1}});
  EXPECT_THROW(induced_subgraph(g, {1, 0}), Error);
  EXPECT_THROW(induced_subgraph(g, {0, 9}), Error);
}

TEST(InducedSubgraph, IsolatedMembersKept) {
  const Graph g = make_graph(4, {{0, 1}});
  const auto sub = induced_subgraph(g, {0, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(InducedEdgeCount, MatchesMaterialisedSubgraph) {
  const Graph g = complete_graph(8);
  for (const NodeSet& nodes :
       {NodeSet{}, NodeSet{3}, NodeSet{0, 1}, NodeSet{1, 3, 5, 7},
        NodeSet{0, 1, 2, 3, 4, 5, 6, 7}}) {
    EXPECT_EQ(induced_edge_count(g, nodes),
              induced_subgraph(g, nodes).graph.num_edges());
  }
}

TEST(InducedEdgeCount, RandomGraphsMatch) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = testing::random_graph(30, 0.2, seed);
    Rng rng(seed + 100);
    NodeSet nodes;
    for (NodeId v = 0; v < 30; ++v) {
      if (rng.next_bool(0.5)) nodes.push_back(v);
    }
    EXPECT_EQ(induced_edge_count(g, nodes),
              induced_subgraph(g, nodes).graph.num_edges());
  }
}

}  // namespace
}  // namespace kcc
