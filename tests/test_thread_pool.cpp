#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace kcc {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadMode) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  // One worker: FIFO execution.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(8);
  std::atomic<int> value{0};
  parallel_for(pool, 1, [&](std::size_t i) { value = int(i) + 41; });
  EXPECT_EQ(value.load(), 41);
}

TEST(ParallelFor, ResultMatchesSequential) {
  ThreadPool pool(6);
  std::vector<long> out(1000);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = long(i) * long(i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], long(i) * long(i));
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(TaskGroup, WaitsForItsOwnJobsOnly) {
  ThreadPool pool(4);
  std::atomic<int> mine{0};
  std::atomic<int> theirs{0};
  TaskGroup group(pool);
  for (int i = 0; i < 50; ++i) {
    group.run([&mine] { mine.fetch_add(1); });
    pool.submit([&theirs] { theirs.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(mine.load(), 50);  // all of the group's jobs are done...
  pool.wait_idle();
  EXPECT_EQ(theirs.load(), 50);  // ...regardless of the untracked ones
}

TEST(TaskGroup, TwoGroupsOverlapInFlight) {
  // The double-buffered pattern of the streaming enumerator: wait on group
  // a while group b still has unscheduled work, then swap.
  ThreadPool pool(2);
  TaskGroup a(pool);
  TaskGroup b(pool);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    TaskGroup& current = round % 2 == 0 ? a : b;
    TaskGroup& next = round % 2 == 0 ? b : a;
    for (int i = 0; i < 8; ++i) next.run([&] { counter.fetch_add(1); });
    current.wait();
  }
  a.wait();
  b.wait();
  EXPECT_EQ(counter.load(), 80);
}

TEST(TaskGroup, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.wait();  // must not hang
  SUCCEED();
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) group.run([&] { counter.fetch_add(1); });
    group.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(TaskGroup, DestructorWaitsForPendingJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 30; ++i) group.run([&] { counter.fetch_add(1); });
  }  // ~TaskGroup must block until every job ran
  EXPECT_EQ(counter.load(), 30);
}

}  // namespace
}  // namespace kcc
