#include "graph/degeneracy.h"

#include <gtest/gtest.h>

#include <span>

#include "clique/enumerator.h"
#include "common/thread_pool.h"
#include "synth/as_topology.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::make_graph;
using testing::random_graph;

// Oracle: naive repeated minimum-degree peeling for core numbers.
std::vector<std::uint32_t> naive_core_numbers(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::vector<bool> removed(n, false);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
  }
  std::uint32_t current = 0;
  for (std::size_t step = 0; step < n; ++step) {
    NodeId best = 0;
    std::uint32_t best_deg = std::numeric_limits<std::uint32_t>::max();
    for (NodeId v = 0; v < n; ++v) {
      if (!removed[v] && degree[v] < best_deg) {
        best = v;
        best_deg = degree[v];
      }
    }
    current = std::max(current, best_deg);
    core[best] = current;
    removed[best] = true;
    for (NodeId w : g.neighbors(best)) {
      if (!removed[w] && degree[w] > 0) --degree[w];
    }
  }
  return core;
}

TEST(Degeneracy, CompleteGraph) {
  const auto r = degeneracy_order(complete_graph(6));
  EXPECT_EQ(r.degeneracy, 5u);
  for (auto c : r.core_number) EXPECT_EQ(c, 5u);
}

TEST(Degeneracy, Cycle) {
  const auto r = degeneracy_order(cycle_graph(8));
  EXPECT_EQ(r.degeneracy, 2u);
}

TEST(Degeneracy, Tree) {
  const Graph g = make_graph(7, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}});
  const auto r = degeneracy_order(g);
  EXPECT_EQ(r.degeneracy, 1u);
}

TEST(Degeneracy, EmptyAndIsolated) {
  EXPECT_EQ(degeneracy_order(Graph{}).degeneracy, 0u);
  GraphBuilder b;
  b.ensure_nodes(4);
  const auto r = degeneracy_order(b.build());
  EXPECT_EQ(r.degeneracy, 0u);
  EXPECT_EQ(r.order.size(), 4u);
}

TEST(Degeneracy, OrderIsPermutationAndPositionsConsistent) {
  const Graph g = random_graph(50, 0.15, 3);
  const auto r = degeneracy_order(g);
  std::vector<bool> seen(50, false);
  for (NodeId v : r.order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (std::uint32_t pos = 0; pos < r.order.size(); ++pos) {
    EXPECT_EQ(r.position_of[r.order[pos]], pos);
  }
}

// Degeneracy ordering invariant: each node has at most `degeneracy`
// neighbours later in the order.
TEST(Degeneracy, LaterNeighborsBounded) {
  const Graph g = random_graph(60, 0.2, 11);
  const auto r = degeneracy_order(g);
  for (NodeId v : r.order) {
    std::size_t later = 0;
    for (NodeId w : g.neighbors(v)) {
      if (r.position_of[w] > r.position_of[v]) ++later;
    }
    EXPECT_LE(later, r.degeneracy);
  }
}

TEST(Degeneracy, CoreNumbersMatchNaivePeeling) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = random_graph(40, 0.12 + 0.04 * double(seed), seed);
    const auto fast = degeneracy_order(g);
    const auto naive = naive_core_numbers(g);
    EXPECT_EQ(fast.core_number, naive) << "seed " << seed;
  }
}

TEST(Degeneracy, KCoreMembershipProperty) {
  // Every node of the k-core has >= k neighbours inside the k-core.
  const Graph g = random_graph(80, 0.1, 21);
  const auto r = degeneracy_order(g);
  for (std::uint32_t k = 1; k <= r.degeneracy; ++k) {
    std::vector<bool> in_core(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      in_core[v] = r.core_number[v] >= k;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!in_core[v]) continue;
      std::size_t inside = 0;
      for (NodeId w : g.neighbors(v)) inside += in_core[w] ? 1 : 0;
      EXPECT_GE(inside, k) << "node " << v << " k " << k;
    }
  }
}

// ----------------------------------------- explicit core-number fixtures

// Star: every node (hub included) peels at degree 1.
TEST(DegeneracyFixtures, StarCoreNumbers) {
  GraphBuilder b(10);
  for (NodeId v = 1; v < 10; ++v) b.add_edge(0, v);
  const auto r = degeneracy_order(b.build());
  EXPECT_EQ(r.degeneracy, 1u);
  for (auto c : r.core_number) EXPECT_EQ(c, 1u);
}

// Complete graphs: K_n is the canonical (n-1)-core.
TEST(DegeneracyFixtures, CompleteGraphCoreNumbers) {
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    const auto r = degeneracy_order(complete_graph(n));
    EXPECT_EQ(r.degeneracy, n - 1) << "K" << n;
    for (auto c : r.core_number) EXPECT_EQ(c, n - 1) << "K" << n;
  }
}

// Chain of K5s, consecutive cliques sharing one node: every node still
// peels inside its own clique, so all core numbers are 4.
TEST(DegeneracyFixtures, CliqueChainCoreNumbers) {
  GraphBuilder b;
  const std::size_t cliques = 4, size = 5;
  for (std::size_t c = 0; c < cliques; ++c) {
    const NodeId base = static_cast<NodeId>(c * (size - 1));
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) {
        b.add_edge(base + i, base + j);
      }
    }
  }
  const auto r = degeneracy_order(b.build());
  EXPECT_EQ(r.degeneracy, 4u);
  for (auto c : r.core_number) EXPECT_EQ(c, 4u);
}

// The ordering invariant (each node has at most `degeneracy` later
// neighbours) on every fixture class, including a mini AS ecosystem.
TEST(DegeneracyFixtures, OrderingInvariantAcrossFixtures) {
  std::vector<Graph> graphs;
  graphs.push_back(complete_graph(6));
  graphs.push_back(cycle_graph(9));
  graphs.push_back(testing::overlapping_cliques(6, 5, 2));
  graphs.push_back(
      generate_ecosystem(SynthParams::test_scale()).topology.graph);
  for (const Graph& g : graphs) {
    const auto r = degeneracy_order(g);
    for (NodeId v : r.order) {
      std::size_t later = 0;
      for (NodeId w : g.neighbors(v)) {
        if (r.position_of[w] > r.position_of[v]) ++later;
      }
      EXPECT_LE(later, r.degeneracy);
    }
  }
}

// The degeneracy-driven clique visit order is a function of the graph
// alone: identical across kernels and thread counts, on a realistic
// hub-heavy topology.
TEST(DegeneracyFixtures, DeterministicVisitOrderAcrossBackends) {
  const Graph g =
      generate_ecosystem(SynthParams::test_scale()).topology.graph;
  clique::Options sparse;
  sparse.backend = clique::Backend::kSparse;
  const auto expected = clique::Enumerator(g, sparse).collect();
  ASSERT_FALSE(expected.empty());

  for (clique::Backend backend :
       {clique::Backend::kAuto, clique::Backend::kBitset}) {
    clique::Options opts;
    opts.backend = backend;
    const clique::Enumerator e(g, opts);
    EXPECT_EQ(e.collect(), expected) << clique::backend_name(backend);
    for (std::size_t threads : {2u, 4u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(e.collect(pool), expected)
          << clique::backend_name(backend) << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace kcc
