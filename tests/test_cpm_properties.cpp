// Property-based tests of the CPM engine, including the paper's Theorem 1
// (nesting: every k-community lies in exactly one (k-1)-community).
#include <gtest/gtest.h>

#include <algorithm>

#include "clique/reference_enumerator.h"
#include "common/set_ops.h"
#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::random_graph;

struct GraphCase {
  std::size_t n;
  double p;        // edge probability; 0 selects preferential attachment
  std::uint64_t seed;
};

class CpmProperty : public ::testing::TestWithParam<GraphCase> {
 protected:
  Graph graph() const {
    const auto& c = GetParam();
    if (c.p == 0.0) {
      // Heavy-tailed case: BA graph with triangle-closing density via m=3.
      return testing::preferential_attachment_graph(c.n, 3, c.seed);
    }
    return random_graph(c.n, c.p, c.seed);
  }
};

// Theorem 1 (paper Sec. 3.1): each community at k is a subset of exactly one
// community at k-1.
TEST_P(CpmProperty, NestingTheorem) {
  const Graph g = graph();
  const CpmResult r = run_cpm(g);
  for (std::size_t k = r.min_k + 1; k <= r.max_k; ++k) {
    for (const Community& child : r.at(k).communities) {
      std::size_t containing = 0;
      for (const Community& parent : r.at(k - 1).communities) {
        if (is_subset(child.nodes, parent.nodes)) ++containing;
      }
      EXPECT_EQ(containing, 1u)
          << "community k" << k << "id" << child.id << " contained in "
          << containing << " (k-1)-communities";
    }
  }
}

// Minimum size: a k-clique community has at least k members.
TEST_P(CpmProperty, MinimumCommunitySize) {
  const CpmResult r = run_cpm(graph());
  for (std::size_t k = r.min_k; k <= r.max_k; ++k) {
    for (const Community& c : r.at(k).communities) {
      EXPECT_GE(c.size(), k);
    }
  }
}

// Every member node participates in at least one k-clique inside the
// community (the community is a union of k-cliques).
TEST_P(CpmProperty, EveryMemberIsInAKClique) {
  const Graph g = graph();
  const CpmResult r = run_cpm(g);
  for (std::size_t k = r.min_k; k <= r.max_k; ++k) {
    for (const Community& c : r.at(k).communities) {
      for (NodeId v : c.nodes) {
        // v must appear in one of the community's maximal cliques of
        // size >= k.
        bool found = false;
        for (CliqueId cid : c.clique_ids) {
          if (r.cliques[cid].size() >= k && contains(r.cliques[cid], v)) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "node " << v << " k " << k;
      }
    }
  }
}

// Communities at the same k never share a k-clique: their clique id lists
// are disjoint.
TEST_P(CpmProperty, CommunitiesShareNoMaximalClique) {
  const CpmResult r = run_cpm(graph());
  for (std::size_t k = r.min_k; k <= r.max_k; ++k) {
    std::vector<CliqueId> seen;
    for (const Community& c : r.at(k).communities) {
      for (CliqueId cid : c.clique_ids) seen.push_back(cid);
    }
    std::vector<CliqueId> unique = seen;
    sort_unique(unique);
    EXPECT_EQ(unique.size(), seen.size()) << "k " << k;
  }
}

// Thread-count independence: identical output for 1, 2 and 8 threads.
TEST_P(CpmProperty, ThreadCountInvariance) {
  const Graph g = graph();
  CpmOptions one, two, eight;
  one.threads = 1;
  two.threads = 2;
  eight.threads = 8;
  const CpmResult r1 = run_cpm(g, one);
  const CpmResult r2 = run_cpm(g, two);
  const CpmResult r8 = run_cpm(g, eight);
  ASSERT_EQ(r1.max_k, r2.max_k);
  ASSERT_EQ(r1.max_k, r8.max_k);
  for (std::size_t k = r1.min_k; k <= r1.max_k; ++k) {
    for (std::size_t i = 0; i < r1.at(k).count(); ++i) {
      EXPECT_EQ(r1.at(k).communities[i].nodes, r2.at(k).communities[i].nodes);
      EXPECT_EQ(r1.at(k).communities[i].nodes, r8.at(k).communities[i].nodes);
    }
  }
}

// Monotonicity: the union of all k-community members shrinks (weakly) as k
// grows, because every k-community is inside a (k-1)-community.
TEST_P(CpmProperty, MemberUnionShrinksWithK) {
  const CpmResult r = run_cpm(graph());
  NodeSet previous;
  for (std::size_t k = r.min_k; k <= r.max_k; ++k) {
    NodeSet members;
    for (const Community& c : r.at(k).communities) {
      members.insert(members.end(), c.nodes.begin(), c.nodes.end());
    }
    sort_unique(members);
    if (k > r.min_k) {
      EXPECT_TRUE(is_subset(members, previous)) << "k " << k;
    }
    previous = std::move(members);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CpmProperty,
    ::testing::Values(GraphCase{12, 0.30, 1}, GraphCase{16, 0.35, 2},
                      GraphCase{20, 0.30, 3}, GraphCase{24, 0.25, 4},
                      GraphCase{30, 0.20, 5}, GraphCase{40, 0.15, 6},
                      GraphCase{25, 0.45, 7}, GraphCase{18, 0.50, 8},
                      GraphCase{50, 0.12, 9}, GraphCase{60, 0.10, 10}));

INSTANTIATE_TEST_SUITE_P(
    ScaleFreeGraphs, CpmProperty,
    ::testing::Values(GraphCase{40, 0.0, 21}, GraphCase{60, 0.0, 22},
                      GraphCase{80, 0.0, 23}, GraphCase{120, 0.0, 24}));

}  // namespace
}  // namespace kcc
