// Hot-swap tests for the serve daemon: the remote reload op, the
// request_reload() flag path (what the SIGHUP handler uses), failed reloads
// keeping the previous view, --no-remote-reload, in-flight pinning across a
// swap, and a reload-under-concurrent-query-load hammer (the TSan target).
// The final test spawns the real kcc binary and drives an actual SIGHUP.

#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cpm/engine.h"
#include "io/snapshot.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "test_helpers.h"

extern char** environ;

namespace kcc {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("kcc_reload_" + name))
      .string();
}

/// Two structurally different results over the same graph family, told
/// apart by their k floor (info().min_k).
struct Fixture {
  cpm::Result result_a;
  cpm::Result result_b;

  Fixture() {
    const Graph g = testing::preferential_attachment_graph(60, 4, 21);
    cpm::Options restricted;
    restricted.min_k = 4;
    result_a = cpm::Engine(cpm::Options{}).run(g);
    result_b = cpm::Engine(restricted).run(g);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Writes `result` over `path` the way `kcc update` does: tmp + rename, so
/// a daemon never maps a half-written file.
void swap_snapshot(const std::string& path, const cpm::Result& result) {
  const std::string tmp = path + ".tmp";
  snapshot::write_snapshot_file(tmp, result);
  std::filesystem::rename(tmp, path);
}

TEST(ServeReload, RemoteReloadSwapsTheSnapshot) {
  const std::string snap = temp_path("remote.snap");
  const std::string sock = temp_path("remote.sock");
  swap_snapshot(snap, fixture().result_a);

  serve::ServerOptions options;
  options.socket_path = sock;
  serve::Server server(snap, options);
  server.start();
  {
    serve::Client client(sock);
    EXPECT_EQ(client.info().min_k, fixture().result_a.cpm.min_k);

    swap_snapshot(snap, fixture().result_b);
    EXPECT_EQ(client.request_reload(), serve::Status::kOk);
    EXPECT_EQ(client.info().min_k, fixture().result_b.cpm.min_k);

    // Reload is idempotent and the connection survives it.
    EXPECT_EQ(client.request_reload(), serve::Status::kOk);
    EXPECT_EQ(client.info().min_k, fixture().result_b.cpm.min_k);
  }
  server.shutdown();
  std::remove(snap.c_str());
}

TEST(ServeReload, FailedReloadKeepsServingThePreviousView) {
  const std::string snap = temp_path("failed.snap");
  const std::string sock = temp_path("failed.sock");
  swap_snapshot(snap, fixture().result_a);

  serve::ServerOptions options;
  options.socket_path = sock;
  serve::Server server(snap, options);
  server.start();
  {
    serve::Client client(sock);

    // Corrupt file on the path: the swap must fail and the old view stays.
    {
      std::ofstream out(snap, std::ios::binary | std::ios::trunc);
      out << "not a snapshot";
    }
    EXPECT_EQ(client.request_reload(), serve::Status::kBadRequest);
    EXPECT_EQ(client.info().min_k, fixture().result_a.cpm.min_k);

    // Missing file: same contract.
    std::remove(snap.c_str());
    EXPECT_EQ(client.request_reload(), serve::Status::kBadRequest);
    EXPECT_EQ(client.info().min_k, fixture().result_a.cpm.min_k);

    // A good file heals it.
    swap_snapshot(snap, fixture().result_b);
    EXPECT_EQ(client.request_reload(), serve::Status::kOk);
    EXPECT_EQ(client.info().min_k, fixture().result_b.cpm.min_k);
  }
  server.shutdown();
  std::remove(snap.c_str());
}

TEST(ServeReload, NoRemoteReloadRefusesTheOpButNotTheFlagPath) {
  const std::string snap = temp_path("norr.snap");
  const std::string sock = temp_path("norr.sock");
  swap_snapshot(snap, fixture().result_a);

  serve::ServerOptions options;
  options.socket_path = sock;
  options.allow_remote_reload = false;
  serve::Server server(snap, options);
  server.start();
  std::thread waiter([&server] { server.wait(); });
  {
    serve::Client client(sock);
    swap_snapshot(snap, fixture().result_b);
    EXPECT_EQ(client.request_reload(), serve::Status::kUnsupported);
    EXPECT_EQ(client.info().min_k, fixture().result_a.cpm.min_k)
        << "refused reload must not swap";

    // request_reload() (the SIGHUP path) is always honored; wait() performs
    // the swap on its next poll tick.
    server.request_reload();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (client.info().min_k != fixture().result_b.cpm.min_k) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "flag-path reload never landed";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  server.request_shutdown();
  waiter.join();
  std::remove(snap.c_str());
}

TEST(ServeReload, InFlightPinKeepsTheOldMappingAlive) {
  const std::string snap = temp_path("pin.snap");
  const std::string sock = temp_path("pin.sock");
  swap_snapshot(snap, fixture().result_a);

  serve::ServerOptions options;
  options.socket_path = sock;
  serve::Server server(snap, options);
  server.start();
  {
    // Pin the pre-swap view the same way a request handler does.
    const auto pinned = server.view_ptr();
    const std::uint64_t before_min_k = pinned->min_k();

    serve::Client client(sock);
    swap_snapshot(snap, fixture().result_b);
    EXPECT_EQ(client.request_reload(), serve::Status::kOk);
    EXPECT_EQ(client.info().min_k, fixture().result_b.cpm.min_k);

    // The pinned mapping still answers from the old snapshot.
    EXPECT_EQ(pinned->min_k(), before_min_k);
    EXPECT_EQ(pinned->num_communities(),
              fixture().result_a.cpm.total_communities());
  }
  server.shutdown();
  std::remove(snap.c_str());
}

TEST(ServeReload, ReloadUnderConcurrentQueryLoad) {
  // The TSan target: several clients hammer queries while the snapshot is
  // swapped repeatedly underneath them. Every answer must be internally
  // consistent with one of the two snapshots — never a torn mix.
  const std::string snap = temp_path("hammer.snap");
  const std::string sock = temp_path("hammer.sock");
  swap_snapshot(snap, fixture().result_a);

  serve::ServerOptions options;
  options.socket_path = sock;
  serve::Server server(snap, options);
  server.start();

  const std::uint64_t min_k_a = fixture().result_a.cpm.min_k;
  const std::uint64_t min_k_b = fixture().result_b.cpm.min_k;
  const std::uint64_t comms_a = fixture().result_a.cpm.total_communities();
  const std::uint64_t comms_b = fixture().result_b.cpm.total_communities();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      serve::Client client(sock);
      while (!stop.load(std::memory_order_acquire)) {
        const serve::ServerInfo info = client.info();
        const bool is_a = info.min_k == min_k_a && info.num_communities == comms_a;
        const bool is_b = info.min_k == min_k_b && info.num_communities == comms_b;
        if (!is_a && !is_b) failures.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    swap_snapshot(snap, swap % 2 == 0 ? fixture().result_b
                                      : fixture().result_a);
    ASSERT_TRUE(server.try_reload().empty()) << "swap " << swap;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0) << "torn reads across a reload";

  server.shutdown();
  std::remove(snap.c_str());
}

TEST(ServeReload, SighupReloadsTheSpawnedDaemon) {
  if (std::getenv("KCC_BIN") == nullptr) {
    GTEST_SKIP() << "KCC_BIN not set (run through ctest)";
  }
  const std::string snap = temp_path("sighup.snap");
  const std::string sock = temp_path("sighup.sock");
  swap_snapshot(snap, fixture().result_a);

  const char* bin = std::getenv("KCC_BIN");
  const std::string snap_flag = "--snapshot=" + snap;
  const std::string sock_flag = "--socket=" + sock;
  std::vector<char*> argv{const_cast<char*>(bin),
                          const_cast<char*>("serve"),
                          const_cast<char*>(snap_flag.c_str()),
                          const_cast<char*>(sock_flag.c_str()), nullptr};
  pid_t pid = -1;
  ASSERT_EQ(::posix_spawn(&pid, bin, nullptr, nullptr, argv.data(), environ),
            0);
  {
    serve::Client client(sock, /*timeout_seconds=*/20.0);
    EXPECT_EQ(client.info().min_k, fixture().result_a.cpm.min_k);

    swap_snapshot(snap, fixture().result_b);
    ASSERT_EQ(::kill(pid, SIGHUP), 0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (client.info().min_k != fixture().result_b.cpm.min_k) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "SIGHUP reload never landed";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(client.request_shutdown(), serve::Status::kOk);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "SIGHUP must reload, not kill";
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace kcc
