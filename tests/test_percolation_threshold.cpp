#include "analysis/percolation_threshold.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace kcc {
namespace {

TEST(PercolationThreshold, CriticalProbabilityFormula) {
  // p_c(k=2) = 1/n — the classic ER giant-component threshold.
  EXPECT_NEAR(critical_probability(100, 2), 0.01, 1e-12);
  // p_c(k=3, n=200) = (2*200)^(-1/2).
  EXPECT_NEAR(critical_probability(200, 3), 1.0 / std::sqrt(400.0), 1e-12);
  EXPECT_THROW(critical_probability(1, 3), Error);
  EXPECT_THROW(critical_probability(10, 1), Error);
}

TEST(PercolationThreshold, MonotoneInKAndN) {
  // Larger k needs denser graphs; larger n percolates at lower p.
  EXPECT_GT(critical_probability(200, 4), critical_probability(200, 3));
  EXPECT_LT(critical_probability(400, 3), critical_probability(200, 3));
}

TEST(PercolationThreshold, SweepShowsPhaseTransition) {
  PercolationSweepOptions options;
  options.n = 250;
  options.k = 3;
  options.ratios = {0.5, 1.0, 2.0};
  options.trials = 3;
  options.seed = 7;
  const auto points = percolation_sweep(options);
  ASSERT_EQ(points.size(), 3u);
  // Subcritical: largest community is a vanishing fraction. Supercritical:
  // a giant community emerges.
  EXPECT_LT(points[0].largest_fraction, 0.10);
  EXPECT_GT(points[2].largest_fraction, 0.35);
  EXPECT_LT(points[0].largest_fraction, points[2].largest_fraction);
}

TEST(PercolationThreshold, DeterministicInSeed) {
  PercolationSweepOptions options;
  options.n = 120;
  options.k = 3;
  options.ratios = {1.0};
  options.trials = 2;
  options.seed = 3;
  const auto a = percolation_sweep(options);
  const auto b = percolation_sweep(options);
  EXPECT_EQ(a[0].largest, b[0].largest);
  EXPECT_EQ(a[0].communities, b[0].communities);
}

TEST(PercolationThreshold, ProbabilityClampedToOne) {
  PercolationSweepOptions options;
  options.n = 30;
  options.k = 6;
  options.ratios = {100.0};  // ratio * p_c > 1
  options.trials = 1;
  const auto points = percolation_sweep(options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].p, 1.0);
  // Complete graph: one community holding everything.
  EXPECT_EQ(points[0].largest, options.n);
}

TEST(PercolationThreshold, InvalidTrialsThrow) {
  PercolationSweepOptions options;
  options.trials = 0;
  EXPECT_THROW(percolation_sweep(options), Error);
}

}  // namespace
}  // namespace kcc
