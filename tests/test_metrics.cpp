#include "metrics/community_metrics.h"

#include <gtest/gtest.h>

#include "cpm/cpm.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::make_graph;
using testing::overlapping_cliques;

TEST(LinkDensity, CliqueIsOne) {
  const Graph g = complete_graph(6);
  EXPECT_DOUBLE_EQ(link_density(g, {0, 1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(link_density(g, {0, 3}), 1.0);
}

TEST(LinkDensity, SmallSetsAreZero) {
  const Graph g = complete_graph(4);
  EXPECT_DOUBLE_EQ(link_density(g, {}), 0.0);
  EXPECT_DOUBLE_EQ(link_density(g, {2}), 0.0);
}

TEST(LinkDensity, PathGraph) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  // 3 edges of 6 possible.
  EXPECT_DOUBLE_EQ(link_density(g, {0, 1, 2, 3}), 0.5);
}

TEST(InternalDegree, CountsOnlyMembers) {
  // Star: 0 connected to 1..4.
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(internal_degree(g, 0, {0, 1, 2}), 2u);
  EXPECT_EQ(internal_degree(g, 1, {0, 1, 2}), 1u);
  EXPECT_EQ(internal_degree(g, 1, {1, 2}), 0u);
}

TEST(Odf, InternalPlusOutIsOne) {
  const Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  const NodeSet community{0, 1, 2};
  for (NodeId v : community) {
    EXPECT_DOUBLE_EQ(internal_degree_fraction(g, v, community) +
                         out_degree_fraction(g, v, community),
                     1.0);
  }
}

TEST(Odf, IsolatedCommunityHasZeroOdf) {
  const Graph g = complete_graph(4);
  EXPECT_DOUBLE_EQ(average_odf(g, {0, 1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(average_internal_fraction(g, {0, 1, 2, 3}), 1.0);
}

TEST(Odf, Tier1LikeCommunityHasHighOdf) {
  // 3-clique where each member also has 7 external customers.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  NodeId next = 3;
  for (NodeId hub = 0; hub < 3; ++hub) {
    for (int i = 0; i < 7; ++i) b.add_edge(hub, next++);
  }
  const Graph g = b.build();
  const double odf = average_odf(g, {0, 1, 2});
  EXPECT_NEAR(odf, 7.0 / 9.0, 1e-12);
}

TEST(Odf, DegreeZeroNodeReportsZero) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.ensure_nodes(3);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(out_degree_fraction(g, 2, {2}), 0.0);
  EXPECT_DOUBLE_EQ(internal_degree_fraction(g, 2, {2}), 0.0);
}

TEST(Odf, EmptySetAverages) {
  const Graph g = complete_graph(3);
  EXPECT_DOUBLE_EQ(average_odf(g, {}), 0.0);
  EXPECT_DOUBLE_EQ(average_internal_fraction(g, {}), 0.0);
}

TEST(ComputeMetrics, PerCommunityBundle) {
  const Graph g = overlapping_cliques(5, 5, 3);
  const CpmResult r = run_cpm(g);
  const auto metrics = compute_metrics(g, r.at(5));
  ASSERT_EQ(metrics.size(), 2u);
  for (const auto& m : metrics) {
    EXPECT_EQ(m.k, 5u);
    EXPECT_EQ(m.size, 5u);
    EXPECT_DOUBLE_EQ(m.density, 1.0);  // each 5-community is a clique
    EXPECT_GT(m.avg_odf, 0.0);         // shared nodes have external links
  }
  // ids align with the community set.
  EXPECT_EQ(metrics[0].id, 0u);
  EXPECT_EQ(metrics[1].id, 1u);
}

TEST(ComputeMetrics, DensityDropsForChainCommunities) {
  // A k=3 community made of a long triangle chain has low density.
  GraphBuilder b;
  for (NodeId i = 0; i + 2 < 20; ++i) {
    b.add_edge(i, i + 1);
    b.add_edge(i, i + 2);
    b.add_edge(i + 1, i + 2);
  }
  const Graph g = b.build();
  const CpmResult r = run_cpm(g);
  const auto metrics = compute_metrics(g, r.at(3));
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].size, 20u);
  EXPECT_LT(metrics[0].density, 0.35);
}

TEST(InternalDegree, OutOfRangeThrows) {
  const Graph g = complete_graph(3);
  EXPECT_THROW(internal_degree(g, 9, {0, 1}), Error);
}

}  // namespace
}  // namespace kcc
