#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"

namespace kcc {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(7), b(7), c(8);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    const auto vb = b.next_u64();
    const auto vc = c.next_u64();
    all_equal = all_equal && va == vb;
    any_diff_c = any_diff_c || va != vc;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.next_int(4, 3), Error);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ZipfSkewsTowardsLowRanks) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto r = rng.next_zipf(10, 1.2);
    ASSERT_LT(r, 10u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  EXPECT_THROW(rng.next_zipf(0, 1.0), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(9);
  const std::vector<int> pool{10, 20, 30, 40, 50};
  const auto sample = rng.sample_without_replacement(pool, 3);
  EXPECT_EQ(sample.size(), 3u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 3u);
  for (int s : sample) {
    EXPECT_TRUE(std::find(pool.begin(), pool.end(), s) != pool.end());
  }
  EXPECT_THROW(rng.sample_without_replacement(pool, 6), Error);
  EXPECT_TRUE(rng.sample_without_replacement(pool, 0).empty());
}

}  // namespace
}  // namespace kcc
