// The single-sweep engine against the per-k oracle: set-identical
// communities for every k on a spread of graph families and seeds, the
// nesting invariant of the in-pass community tree, and the cpm::Engine
// facade that fronts both.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/error.h"
#include "common/set_ops.h"
#include "cpm/cpm.h"
#include "cpm/engine.h"
#include "cpm/sweep_cpm.h"
#include "synth/as_topology.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::expect_differential_ok;
using testing::expect_nesting;
using testing::expect_same_cpm;
using testing::expect_same_tree;
using testing::make_graph;
using testing::overlapping_cliques;
using testing::preferential_attachment_graph;
using testing::random_graph;

void check_graph(const Graph& g, const std::string& label,
                 CpmOptions options = {}) {
  const CpmResult oracle = run_cpm(g, options);
  const SweepCpmResult sweep = run_sweep_cpm(g, options);
  expect_same_cpm(oracle, sweep.cpm, label);
  // Default-option graphs additionally go through the check:: differential
  // matrix (every engine × threads × budgets + the invariant oracles).
  if (options.min_k == 2 && options.max_k == 0) {
    expect_differential_ok(g, label);
  }
  if (sweep.cpm.max_k < sweep.cpm.min_k) return;  // nothing to arrange
  expect_nesting(sweep.cpm, sweep.tree, label);

  // from_levels (in-pass) must agree with the post-hoc construction.
  expect_same_tree(CommunityTree::build(oracle), sweep.tree, label);
}

// ------------------------------------------------ sweep vs per-k oracle

TEST(SweepCpm, MatchesOracleOnRandomGraphs) {
  // >= 10 independent seeds across two densities.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_graph(random_graph(60, 0.2, seed),
                "random n=60 p=0.2 seed=" + std::to_string(seed));
  }
  for (std::uint64_t seed = 7; seed <= 12; ++seed) {
    check_graph(random_graph(40, 0.4, seed),
                "random n=40 p=0.4 seed=" + std::to_string(seed));
  }
}

TEST(SweepCpm, MatchesOracleOnScaleFreeGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    check_graph(preferential_attachment_graph(150, 4, seed),
                "pa n=150 m=4 seed=" + std::to_string(seed));
  }
}

TEST(SweepCpm, MatchesOracleOnSyntheticEcosystem) {
  SynthParams params = SynthParams::test_scale();
  for (std::uint64_t seed : {7u, 42u}) {
    params.seed = seed;
    const Graph g = generate_ecosystem(params).topology.graph;
    check_graph(g, "synth seed=" + std::to_string(seed));
  }
}

TEST(SweepCpm, MatchesOracleOnStructuredGraphs) {
  check_graph(complete_graph(8), "K8");
  check_graph(overlapping_cliques(5, 5, 3), "two 5-cliques sharing 3");
  check_graph(overlapping_cliques(6, 4, 2), "6-clique and 4-clique sharing 2");
  check_graph(make_graph(4, {{0, 1}, {2, 3}}), "two disjoint edges");
}

TEST(SweepCpm, MatchesOracleWithRestrictedKRange) {
  const Graph g = random_graph(50, 0.3, 99);
  for (std::size_t min_k : {2u, 3u, 4u, 6u}) {
    CpmOptions options;
    options.min_k = min_k;
    check_graph(g, "min_k=" + std::to_string(min_k), options);
    options.max_k = min_k + 2;
    check_graph(g, "k in [" + std::to_string(min_k) + ", +2]", options);
  }
}

TEST(SweepCpm, EmptyRangeYieldsNoLevelsAndNoTree) {
  // Min_k above the largest clique: nothing percolates.
  CpmOptions options;
  options.min_k = 9;
  const SweepCpmResult sweep = run_sweep_cpm(complete_graph(5), options);
  EXPECT_LT(sweep.cpm.max_k, sweep.cpm.min_k);
  EXPECT_TRUE(sweep.cpm.by_k.empty());
  EXPECT_TRUE(sweep.tree.nodes().empty());
}

TEST(SweepCpm, RejectsBadInput) {
  CpmOptions options;
  options.min_k = 1;
  EXPECT_THROW(run_sweep_cpm(complete_graph(3), options), Error);
  EXPECT_THROW(
      run_sweep_cpm_on_cliques(complete_graph(3), {{2, 0, 1}}, {}), Error);
}

// ------------------------------------------------------- engine facade

TEST(CpmEngine, SweepAndPerKDispatchAgree) {
  const Graph g = random_graph(50, 0.3, 5);
  cpm::Options options;
  options.engine = "sweep";
  const cpm::Result sweep = cpm::Engine(options).run(g);
  options.engine = "per_k";
  const cpm::Result per_k = cpm::Engine(options).run(g);

  expect_same_cpm(per_k.cpm, sweep.cpm, "engine dispatch");
  ASSERT_TRUE(sweep.has_tree);
  ASSERT_TRUE(per_k.has_tree);
  EXPECT_EQ(sweep.tree.nodes().size(), per_k.tree.nodes().size());
  EXPECT_EQ(sweep.engine_name, "sweep");
  EXPECT_EQ(per_k.engine_name, "per_k");
  EXPECT_EQ(sweep.exactness, cpm::Exactness::kExact);
  EXPECT_EQ(per_k.exactness, cpm::Exactness::kExact);
  EXPECT_GT(sweep.timings.total_seconds, 0.0);
  EXPECT_GT(sweep.timings.cliques_seconds, 0.0);
  EXPECT_GT(sweep.timings.percolate_seconds, 0.0);
}

TEST(CpmEngine, ReferenceEngineAgreesOnNodeSets) {
  const Graph g = overlapping_cliques(5, 5, 3);
  cpm::Options options;
  options.engine = "reference";
  const cpm::Result ref = cpm::Engine(options).run(g);
  options.engine = "sweep";
  const cpm::Result sweep = cpm::Engine(options).run(g);

  ASSERT_EQ(ref.cpm.min_k, sweep.cpm.min_k);
  ASSERT_EQ(ref.cpm.max_k, sweep.cpm.max_k);
  for (std::size_t k = ref.cpm.min_k; k <= ref.cpm.max_k; ++k) {
    ASSERT_EQ(ref.cpm.at(k).count(), sweep.cpm.at(k).count()) << "k=" << k;
    for (CommunityId id = 0; id < ref.cpm.at(k).count(); ++id) {
      EXPECT_EQ(ref.cpm.at(k).communities[id].nodes,
                sweep.cpm.at(k).communities[id].nodes)
          << "k=" << k;
    }
  }
  // The reference result carries no clique ids; its tree comes from the
  // containment fallback and must still nest correctly.
  ASSERT_TRUE(ref.has_tree);
  expect_nesting(ref.cpm, ref.tree, "reference tree");
}

TEST(CpmEngine, ReferenceEngineRejectsPreEnumeratedCliques) {
  cpm::Options options;
  options.engine = "reference";
  EXPECT_THROW(
      cpm::Engine(options).run_on_cliques(complete_graph(4), {{0, 1, 2, 3}}),
      Error);
}

TEST(CpmEngine, BuildTreeCanBeDisabled) {
  cpm::Options options;
  options.build_tree = false;
  const cpm::Result result = cpm::Engine(options).run(complete_graph(6));
  EXPECT_FALSE(result.has_tree);
  EXPECT_EQ(result.cpm.max_k, 6u);
}

TEST(CpmEngine, WeightedRunFiltersAndNeverBuildsATree) {
  const Graph g = overlapping_cliques(4, 4, 2);
  // All edge weights 1 except a heavy triangle {0, 1, 2}.
  std::vector<double> per_edge;
  for (const auto& [u, v] : g.edges()) {
    per_edge.push_back(u <= 2 && v <= 2 ? 4.0 : 1.0);
  }
  const EdgeWeights weights(g, std::move(per_edge));

  cpm::Options options;
  options.min_k = 3;
  options.max_k = 3;
  options.intensity_threshold = 2.0;
  const cpm::Result result = cpm::Engine(options).run_weighted(g, weights);
  EXPECT_FALSE(result.has_tree);
  ASSERT_TRUE(result.cpm.has_k(3));
  ASSERT_EQ(result.cpm.at(3).count(), 1u);
  EXPECT_EQ(result.cpm.at(3).communities[0].nodes, (NodeSet{0, 1, 2}));
}

TEST(CpmEngine, ValidatesOptions) {
  cpm::Options options;
  options.min_k = 1;
  EXPECT_THROW(cpm::Engine{options}, Error);
  options.min_k = 2;
  options.min_clique_size = 1;
  EXPECT_THROW(cpm::Engine{options}, Error);
}

TEST(CpmEngine, ParsesEngineNames) {
  // The deprecated EngineKind shim must stay wired to the registry names.
  EXPECT_EQ(cpm::parse_engine("sweep"), cpm::EngineKind::kSweep);
  EXPECT_EQ(cpm::parse_engine("per_k"), cpm::EngineKind::kPerK);
  EXPECT_EQ(cpm::parse_engine("almost_exact"), cpm::EngineKind::kAlmostExact);
  EXPECT_EQ(cpm::parse_engine("reference"), cpm::EngineKind::kReference);
  EXPECT_THROW(cpm::parse_engine("bogus"), Error);
  EXPECT_STREQ(cpm::engine_name(cpm::EngineKind::kSweep), "sweep");
  EXPECT_STREQ(cpm::engine_name(cpm::EngineKind::kPerK), "per_k");
  EXPECT_STREQ(cpm::engine_name(cpm::EngineKind::kAlmostExact),
               "almost_exact");
  EXPECT_STREQ(cpm::engine_name(cpm::EngineKind::kReference), "reference");
}

TEST(CpmEngine, OptionsFromCliAppliesSharedFlags) {
  const char* argv[] = {"prog", "--k-min=3", "--k-max=7", "--engine=per_k",
                        "--threads=2"};
  const CliArgs args(5, argv, cpm::engine_cli_flags());
  const cpm::Options options = cpm::options_from_cli(args);
  EXPECT_EQ(options.min_k, 3u);
  EXPECT_EQ(options.max_k, 7u);
  EXPECT_EQ(options.threads, 2u);
  EXPECT_EQ(options.engine, "per_k");

  // Defaults pass through untouched when no flag is given.
  const char* bare[] = {"prog"};
  cpm::Options defaults;
  defaults.min_k = 4;
  const cpm::Options kept =
      cpm::options_from_cli(CliArgs(1, bare, cpm::engine_cli_flags()),
                            defaults);
  EXPECT_EQ(kept.min_k, 4u);
  EXPECT_EQ(kept.engine, "sweep");
}

}  // namespace
}  // namespace kcc
