// The almost_exact engine (Baudin et al. 2021 bounded-memory percolation)
// and the registry/similarity machinery it forced into the API:
//   * registry round-trip — every registered name parses, constructs an
//     Engine and runs on a smoke graph with correct provenance;
//   * Engine::run_on_cliques across all capable engines × clique backends;
//   * spill-dir validation at Engine::run entry;
//   * almost-exact semantics — coarsening of the exact partition, exact at
//     k=2, deterministic, nesting tree, F1 >= 0.99 on seeded families;
//   * cpm::compare_results unit behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "clique/parallel_cliques.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "cpm/almost_cpm.h"
#include "cpm/compare.h"
#include "cpm/engine.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::expect_nesting;
using testing::make_graph;
using testing::overlapping_cliques;
using testing::random_graph;

cpm::Result run_engine(const std::string& engine, const Graph& g) {
  cpm::Options options;
  options.engine = engine;
  return cpm::Engine(options).run(g);
}

// Two K5s sharing `shared` nodes plus a pendant path — enough structure for
// several k levels but small enough for the reference engine.
Graph smoke_graph() { return overlapping_cliques(5, 5, 3); }

// ------------------------------------------------------------ registry

TEST(EngineRegistry, EveryRegisteredEngineRoundTrips) {
  const Graph g = smoke_graph();
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    // Name → info lookup round-trips.
    const cpm::EngineInfo* found = cpm::find_engine(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->name, info.name);
    EXPECT_EQ(&cpm::engine_info(info.name), found) << info.name;
    EXPECT_FALSE(info.summary.empty()) << info.name;

    // Name → Engine → Result round-trips with provenance.
    cpm::Options options;
    options.engine = info.name;
    const cpm::Engine engine(options);
    EXPECT_EQ(engine.info().name, info.name);
    const cpm::Result result = engine.run(g);
    EXPECT_EQ(result.engine_name, info.name);
    EXPECT_EQ(result.exactness == cpm::Exactness::kExact, info.caps.exact)
        << info.name;
    EXPECT_GE(result.cpm.max_k, 5u) << info.name;
    ASSERT_TRUE(result.cpm.has_k(5)) << info.name;
    EXPECT_EQ(result.cpm.at(5).count(), 2u) << info.name;
  }
  EXPECT_NE(cpm::engine_names_joined().find("almost_exact"),
            std::string::npos);
}

TEST(EngineRegistry, RunOnCliquesAgreesAcrossEnginesAndBackends) {
  const Graph g = random_graph(40, 0.35, 9);
  ThreadPool pool(2);
  const std::vector<NodeSet> cliques = parallel_maximal_cliques(g, pool, 2);

  cpm::Options baseline_options;
  baseline_options.engine = "per_k";
  const cpm::Result baseline =
      cpm::Engine(baseline_options).run_on_cliques(g, cliques);

  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    if (!info.caps.supports_run_on_cliques) {
      cpm::Options options;
      options.engine = info.name;
      EXPECT_THROW(cpm::Engine(options).run_on_cliques(g, cliques), Error)
          << info.name;
      continue;
    }
    cpm::Options options;
    options.engine = info.name;
    const cpm::Result result =
        cpm::Engine(options).run_on_cliques(g, cliques);
    EXPECT_EQ(result.engine_name, info.name);
    if (info.caps.exact) {
      if (info.caps.canonical_clique_order) {
        // The engine cannot preserve enumeration order (e.g. incremental);
        // compare both sides in canonical clique order instead.
        cpm::Result canon_result = result;
        cpm::Result canon_baseline = baseline;
        cpm::canonicalise_clique_order(canon_result);
        cpm::canonicalise_clique_order(canon_baseline);
        EXPECT_EQ(cpm::canonical_digest(canon_result),
                  cpm::canonical_digest(canon_baseline))
            << info.name;
      } else {
        EXPECT_EQ(cpm::canonical_digest(result),
                  cpm::canonical_digest(baseline))
            << info.name;
      }
    } else {
      const cpm::Comparison gap = cpm::compare_results(baseline, result);
      EXPECT_TRUE(gap.ok) << info.name << ": " << gap.summary;
    }
  }
}

TEST(EngineRegistry, RegisterEngineRejectsDuplicates) {
  cpm::EngineInfo dup;
  dup.name = "sweep";
  dup.summary = "clash";
  EXPECT_THROW(cpm::register_engine(dup), Error);
  cpm::EngineInfo anon;
  anon.summary = "unnamed";
  EXPECT_THROW(cpm::register_engine(anon), Error);
}

// ------------------------------------------------------ spill validation

TEST(EngineOptionsSpill, BadSpillDirFailsAtRunEntry) {
  cpm::Options options;
  options.engine = "stream";
  options.spill_dir = "/nonexistent/kcc-spill-dir";
  const cpm::Engine engine(options);
  const Graph g = complete_graph(4);
  try {
    engine.run(g);
    FAIL() << "expected kcc::Error for a bad spill dir";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/kcc-spill-dir"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(engine.run_on_cliques(g, {{0, 1, 2, 3}}), Error);
}

TEST(EngineOptionsSpill, EnginesWithoutBudgetSupportIgnoreSpillDir) {
  // The flag is a stream-only knob; engines that never spill must not
  // reject an unrelated path.
  cpm::Options options;
  options.engine = "sweep";
  options.spill_dir = "/nonexistent/kcc-spill-dir";
  const cpm::Result result = cpm::Engine(options).run(complete_graph(4));
  EXPECT_EQ(result.cpm.max_k, 4u);
}

// -------------------------------------------------------- almost_exact

TEST(AlmostCpm, ExactOnSingleCliqueAndAtK2) {
  // One maximal clique: nothing to percolate, trivially exact.
  const cpm::Result exact = run_engine("sweep", complete_graph(6));
  const cpm::Result almost = run_engine("almost_exact", complete_graph(6));
  const cpm::Comparison gap = cpm::compare_results(exact, almost);
  EXPECT_TRUE(gap.identical) << gap.summary;

  // k=2 is connected components — computed exactly by every engine.
  const Graph g = random_graph(60, 0.08, 3);
  const cpm::Result e2 = run_engine("sweep", g);
  const cpm::Result a2 = run_engine("almost_exact", g);
  ASSERT_TRUE(a2.cpm.has_k(2));
  EXPECT_EQ(a2.cpm.at(2).count(), e2.cpm.at(2).count());
  for (CommunityId id = 0; id < a2.cpm.at(2).count(); ++id) {
    EXPECT_EQ(a2.cpm.at(2).communities[id].nodes,
              e2.cpm.at(2).communities[id].nodes);
  }
}

TEST(AlmostCpm, CoarsensTheExactPartition) {
  // Over-approximation: almost_exact may merge exact communities but never
  // split them — every exact community must be contained in exactly one
  // almost community at the same k.
  const std::uint64_t seeds[] = {3, 11, 29};
  for (const std::uint64_t seed : seeds) {
    const Graph g = random_graph(50, 0.25, seed);
    const cpm::Result exact = run_engine("sweep", g);
    const cpm::Result almost = run_engine("almost_exact", g);
    ASSERT_EQ(exact.cpm.min_k, almost.cpm.min_k);
    ASSERT_EQ(exact.cpm.max_k, almost.cpm.max_k);
    for (std::size_t k = exact.cpm.min_k; k <= exact.cpm.max_k; ++k) {
      EXPECT_LE(almost.cpm.at(k).count(), exact.cpm.at(k).count())
          << "seed " << seed << " k=" << k;
      // Clique-partition coarsening: two cliques in the same exact
      // community must land in the same almost community.
      const CommunitySet& es = exact.cpm.at(k);
      const CommunitySet& as = almost.cpm.at(k);
      ASSERT_EQ(es.community_of_clique.size(),
                as.community_of_clique.size())
          << "seed " << seed << " k=" << k;
      for (const Community& c : es.communities) {
        ASSERT_FALSE(c.clique_ids.empty());
        const CommunityId expected =
            as.community_of_clique[c.clique_ids.front()];
        ASSERT_NE(expected, CommunitySet::kNoCommunity)
            << "seed " << seed << " k=" << k;
        for (const CliqueId id : c.clique_ids) {
          EXPECT_EQ(as.community_of_clique[id], expected)
              << "seed " << seed << " k=" << k << " clique " << id;
        }
        // And node-wise: the exact community sits inside that almost one.
        const Community& container = as.communities[expected];
        EXPECT_TRUE(std::includes(container.nodes.begin(),
                                  container.nodes.end(), c.nodes.begin(),
                                  c.nodes.end()))
            << "seed " << seed << " k=" << k << " community " << c.id;
      }
    }
  }
}

TEST(AlmostCpm, StaysWithinTheGapThresholdOnSeededFamilies) {
  struct Family {
    const char* name;
    Graph graph;
  };
  const Family families[] = {
      {"overlapping_cliques", overlapping_cliques(6, 5, 3)},
      {"random_60", random_graph(60, 0.25, 5)},
      {"preferential", testing::preferential_attachment_graph(80, 4, 17)},
  };
  for (const Family& family : families) {
    const cpm::Result exact = run_engine("sweep", family.graph);
    const cpm::Result almost = run_engine("almost_exact", family.graph);
    const cpm::Comparison gap = cpm::compare_results(exact, almost);
    EXPECT_GE(gap.worst_f1, 0.99) << family.name << ": " << gap.summary;
    EXPECT_TRUE(gap.ok) << family.name << ": " << gap.summary;
  }
}

TEST(AlmostCpm, DeterministicAndThreadInvariant) {
  const Graph g = random_graph(50, 0.3, 7);
  cpm::Options t1;
  t1.engine = "almost_exact";
  t1.threads = 1;
  cpm::Options t4 = t1;
  t4.threads = 4;
  const std::uint64_t a = cpm::canonical_digest(cpm::Engine(t1).run(g));
  const std::uint64_t b = cpm::canonical_digest(cpm::Engine(t1).run(g));
  const std::uint64_t c = cpm::canonical_digest(cpm::Engine(t4).run(g));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(AlmostCpm, TreeNestsAndCanBeDisabled) {
  const Graph g = random_graph(45, 0.3, 13);
  const cpm::Result almost = run_engine("almost_exact", g);
  ASSERT_TRUE(almost.has_tree);
  expect_nesting(almost.cpm, almost.tree, "almost tree");

  cpm::Options options;
  options.engine = "almost_exact";
  options.build_tree = false;
  EXPECT_FALSE(cpm::Engine(options).run(g).has_tree);
}

TEST(AlmostCpm, StatsCountTheWork) {
  const AlmostCpmResult result =
      run_almost_cpm(overlapping_cliques(5, 5, 3));
  EXPECT_GT(result.stats.candidate_checks, 0u);
  EXPECT_GT(result.stats.unions, 0u);
  EXPECT_GT(result.stats.membership_entries_peak, 0u);
}

TEST(AlmostCpm, CanonicalTextCarriesTheExactnessHeader) {
  const Graph g = complete_graph(3);
  const std::string exact_text = cpm::canonical_text(run_engine("sweep", g));
  const std::string almost_text =
      cpm::canonical_text(run_engine("almost_exact", g));
  EXPECT_EQ(exact_text.rfind("exactness exact\n", 0), 0u);
  EXPECT_EQ(almost_text.rfind("exactness almost_exact\n", 0), 0u);
}

// ------------------------------------------------------ compare_results

TEST(CompareResults, IdenticalResultsArePerfect) {
  const Graph g = smoke_graph();
  const cpm::Result a = run_engine("sweep", g);
  const cpm::Result b = run_engine("per_k", g);
  const cpm::Comparison gap = cpm::compare_results(a, b);
  EXPECT_TRUE(gap.identical);
  EXPECT_TRUE(gap.ok);
  EXPECT_DOUBLE_EQ(gap.worst_f1, 1.0);
  EXPECT_EQ(gap.levels.size(), a.cpm.max_k - a.cpm.min_k + 1);
}

TEST(CompareResults, KRangeMismatchFailsOutright) {
  const cpm::Result a = run_engine("sweep", complete_graph(5));
  const cpm::Result b = run_engine("sweep", complete_graph(3));
  const cpm::Comparison gap = cpm::compare_results(a, b);
  EXPECT_FALSE(gap.ok);
  EXPECT_DOUBLE_EQ(gap.worst_f1, 0.0);
  EXPECT_NE(gap.summary.find("k-range mismatch"), std::string::npos);
}

TEST(CompareResults, MergedCommunitiesScoreBelowOne) {
  // Doctor a candidate by merging the two k=5 communities into one — recall
  // stays high (each baseline community maps into the merged one) but
  // precision drops, so F1 lands strictly between 0 and 1.
  const Graph g = smoke_graph();
  const cpm::Result baseline = run_engine("sweep", g);
  cpm::Result merged = run_engine("sweep", g);
  CommunitySet& at5 = merged.cpm.by_k[5 - merged.cpm.min_k];
  ASSERT_EQ(at5.k, 5u);
  ASSERT_EQ(at5.count(), 2u);
  NodeSet all = at5.communities[0].nodes;
  all.insert(all.end(), at5.communities[1].nodes.begin(),
             at5.communities[1].nodes.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  at5.communities.resize(1);
  at5.communities[0].nodes = all;

  cpm::CompareOptions options;
  options.publish_metrics = false;
  const cpm::Comparison gap = cpm::compare_results(baseline, merged, options);
  EXPECT_FALSE(gap.identical);
  EXPECT_LT(gap.worst_f1, 1.0);
  EXPECT_GT(gap.worst_f1, 0.0);
  EXPECT_EQ(gap.worst_k, 5u);
}

}  // namespace
}  // namespace kcc
