#include "data/tags.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace kcc {
namespace {

GeoDataset make_geo() {
  // 0: DE (EU), 1: FR (EU), 2: US (NA), 3: JP (AS)
  std::vector<Country> countries{{"DE", "EU"}, {"FR", "EU"}, {"US", "NA"},
                                 {"JP", "AS"}};
  // node 0: DE only (national)
  // node 1: DE+FR (continental)
  // node 2: DE+US (worldwide)
  // node 3: none (unknown)
  // node 4: US only (national)
  // node 5: DE+FR+JP (worldwide)
  std::vector<std::vector<CountryId>> locations{
      {0}, {0, 1}, {0, 2}, {}, {2}, {0, 1, 3}};
  return GeoDataset(std::move(countries), std::move(locations));
}

IxpDataset make_ixps() {
  std::vector<Ixp> ixps;
  ixps.push_back({"ALPHA", "DE", {0, 1, 2}});
  ixps.push_back({"BETA", "US", {2, 4}});
  return IxpDataset(std::move(ixps));
}

TEST(GeoTags, Classification) {
  const GeoDataset geo = make_geo();
  EXPECT_EQ(classify_geo(geo, 0), GeoTag::kNational);
  EXPECT_EQ(classify_geo(geo, 1), GeoTag::kContinental);
  EXPECT_EQ(classify_geo(geo, 2), GeoTag::kWorldwide);
  EXPECT_EQ(classify_geo(geo, 3), GeoTag::kUnknown);
  EXPECT_EQ(classify_geo(geo, 5), GeoTag::kWorldwide);
  // Nodes beyond the dataset are unknown.
  EXPECT_EQ(classify_geo(geo, 99), GeoTag::kUnknown);
}

TEST(GeoTags, Counts) {
  const auto counts = count_geo_tags(make_geo(), 6);
  EXPECT_EQ(counts.national, 2u);
  EXPECT_EQ(counts.continental, 1u);
  EXPECT_EQ(counts.worldwide, 2u);
  EXPECT_EQ(counts.unknown, 1u);
}

TEST(GeoTags, Names) {
  EXPECT_STREQ(geo_tag_name(GeoTag::kNational), "national");
  EXPECT_STREQ(geo_tag_name(GeoTag::kContinental), "continental");
  EXPECT_STREQ(geo_tag_name(GeoTag::kWorldwide), "worldwide");
  EXPECT_STREQ(geo_tag_name(GeoTag::kUnknown), "unknown");
}

TEST(IxpTags, Counts) {
  const auto counts = count_ixp_tags(make_ixps(), 6);
  EXPECT_EQ(counts.on_ixp, 4u);     // 0, 1, 2, 4
  EXPECT_EQ(counts.not_on_ixp, 2u); // 3, 5
}

TEST(IxpTags, OnIxpFraction) {
  const IxpDataset ixps = make_ixps();
  EXPECT_DOUBLE_EQ(on_ixp_fraction(ixps, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(on_ixp_fraction(ixps, {3, 5}), 0.0);
  EXPECT_DOUBLE_EQ(on_ixp_fraction(ixps, {0, 3}), 0.5);
  EXPECT_DOUBLE_EQ(on_ixp_fraction(ixps, {}), 0.0);
}

TEST(GeoTags, TagFraction) {
  const GeoDataset geo = make_geo();
  EXPECT_DOUBLE_EQ(geo_tag_fraction(geo, {0, 4}, GeoTag::kNational), 1.0);
  EXPECT_DOUBLE_EQ(geo_tag_fraction(geo, {0, 3}, GeoTag::kUnknown), 0.5);
}

TEST(IxpDataset, MembershipQueries) {
  const IxpDataset ixps = make_ixps();
  EXPECT_EQ(ixps.count(), 2u);
  EXPECT_TRUE(ixps.is_on_ixp(0));
  EXPECT_FALSE(ixps.is_on_ixp(3));
  EXPECT_FALSE(ixps.is_on_ixp(1000));
  EXPECT_EQ(ixps.ixps_of(2), (std::vector<IxpId>{0, 1}));
  EXPECT_TRUE(ixps.ixps_of(3).empty());
  EXPECT_EQ(ixps.on_ixp_nodes(), (NodeSet{0, 1, 2, 4}));
}

TEST(IxpDataset, FindByName) {
  const IxpDataset ixps = make_ixps();
  EXPECT_EQ(ixps.find("BETA"), 1u);
  EXPECT_THROW(ixps.find("GAMMA"), Error);
  EXPECT_THROW(ixps.ixp(5), Error);
  EXPECT_EQ(ixps.ixp(0).name, "ALPHA");
}

TEST(IxpDataset, UnsortedParticipantsRejected) {
  std::vector<Ixp> bad;
  bad.push_back({"X", "DE", {2, 1}});
  EXPECT_THROW(IxpDataset(std::move(bad)), Error);
}

TEST(GeoDataset, Accessors) {
  const GeoDataset geo = make_geo();
  EXPECT_EQ(geo.country_count(), 4u);
  EXPECT_EQ(geo.find_country("US"), 2u);
  EXPECT_THROW(geo.find_country("XX"), Error);
  EXPECT_THROW(geo.country(77), Error);
  EXPECT_EQ(geo.known_node_count(), 5u);
  EXPECT_EQ(geo.nodes_in_country(0), (NodeSet{0, 1, 2, 5}));  // DE
  EXPECT_EQ(geo.nodes_in_country(3), (NodeSet{5}));           // JP
  EXPECT_TRUE(geo.locations_of(1000).empty());
}

TEST(GeoDataset, LocationOutOfRangeRejected) {
  std::vector<Country> countries{{"DE", "EU"}};
  std::vector<std::vector<CountryId>> locations{{5}};
  EXPECT_THROW(GeoDataset(std::move(countries), std::move(locations)), Error);
}

}  // namespace
}  // namespace kcc
