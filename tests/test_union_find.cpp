#include "common/union_find.h"

#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "common/rng.h"

namespace kcc {
namespace {

TEST(UnionFind, Singletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteAndConnected) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);  // {0,1,2,3}, {4}, {5}
  EXPECT_EQ(uf.set_size(2), 4u);
}

TEST(UnionFind, GroupsSortedAndComplete) {
  UnionFind uf(7);
  uf.unite(5, 2);
  uf.unite(2, 6);
  uf.unite(0, 3);
  const auto groups = uf.groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(groups[1], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(groups[2], (std::vector<std::uint32_t>{2, 5, 6}));
  EXPECT_EQ(groups[3], (std::vector<std::uint32_t>{4}));
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), Error);
}

TEST(UnionFind, Reset) {
  UnionFind uf(4);
  uf.unite(0, 1);
  uf.reset(2);
  EXPECT_EQ(uf.size(), 2u);
  EXPECT_EQ(uf.set_count(), 2u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, EmptyGroups) {
  UnionFind uf(0);
  EXPECT_TRUE(uf.groups().empty());
  EXPECT_EQ(uf.set_count(), 0u);
}

// Property: equivalent to a naive label-propagation implementation.
TEST(UnionFind, RandomizedAgainstNaive) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.next_below(40);
    UnionFind uf(n);
    std::vector<std::uint32_t> label(n);
    for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
    for (int op = 0; op < 80; ++op) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(n));
      const auto b = static_cast<std::uint32_t>(rng.next_below(n));
      uf.unite(a, b);
      const std::uint32_t from = label[a], to = label[b];
      for (auto& l : label) {
        if (l == from) l = to;
      }
    }
    std::map<std::uint32_t, std::size_t> naive_sizes;
    for (auto l : label) ++naive_sizes[l];
    EXPECT_EQ(uf.set_count(), naive_sizes.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        EXPECT_EQ(uf.connected(i, j), label[i] == label[j]);
      }
    }
  }
}

}  // namespace
}  // namespace kcc
