#include "clique/bron_kerbosch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "clique/clique_stats.h"
#include "clique/enumerator.h"
#include "clique/reference_enumerator.h"
#include "common/error.h"
#include "test_helpers.h"

namespace kcc {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::make_graph;
using testing::random_graph;

std::vector<NodeSet> sorted_cliques(std::vector<NodeSet> cliques) {
  std::sort(cliques.begin(), cliques.end());
  return cliques;
}

TEST(BronKerbosch, CompleteGraphSingleClique) {
  const auto cliques = maximal_cliques(complete_graph(7));
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 7u);
}

TEST(BronKerbosch, EmptyAndIsolatedGraphs) {
  EXPECT_TRUE(maximal_cliques(Graph{}).empty());
  GraphBuilder b;
  b.ensure_nodes(3);
  const auto cliques = maximal_cliques(b.build());
  EXPECT_EQ(cliques.size(), 3u);  // three singleton maximal cliques
  for (const auto& c : cliques) EXPECT_EQ(c.size(), 1u);
}

TEST(BronKerbosch, MinSizeFiltersIsolated) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.ensure_nodes(4);
  const auto cliques = maximal_cliques(b.build(), 2);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (NodeSet{0, 1}));
}

TEST(BronKerbosch, CycleGivesEdges) {
  const auto cliques = maximal_cliques(cycle_graph(6));
  EXPECT_EQ(cliques.size(), 6u);
  for (const auto& c : cliques) EXPECT_EQ(c.size(), 2u);
}

TEST(BronKerbosch, TwoTrianglesSharingEdge) {
  // {0,1,2} and {1,2,3}
  const Graph g = make_graph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const auto cliques = sorted_cliques(maximal_cliques(g));
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (NodeSet{0, 1, 2}));
  EXPECT_EQ(cliques[1], (NodeSet{1, 2, 3}));
}

TEST(BronKerbosch, MoonMoserCounts) {
  // Complete multipartite with parts of size 3 maximises maximal-clique
  // count: K(3,3) has 3*3 = 9, K(3,3,3) has 3^3 = 27 (Moon-Moser bound
  // 3^(n/3)); the cocktail-party graph K(2,2,2) has 2^3 = 8.
  auto multipartite = [](std::size_t parts, std::size_t part_size) {
    GraphBuilder b(parts * part_size);
    const NodeId n = static_cast<NodeId>(parts * part_size);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (i / part_size != j / part_size) b.add_edge(i, j);
      }
    }
    b.ensure_nodes(parts * part_size);
    return b.build();
  };
  EXPECT_EQ(maximal_cliques(multipartite(2, 3)).size(), 9u);
  EXPECT_EQ(maximal_cliques(multipartite(3, 3)).size(), 27u);
  EXPECT_EQ(maximal_cliques(multipartite(3, 2)).size(), 8u);
}

TEST(BronKerbosch, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const double p = 0.1 + 0.04 * double(seed);
    const Graph g = random_graph(14, p, seed);
    EXPECT_EQ(sorted_cliques(maximal_cliques(g)),
              reference_maximal_cliques(g))
        << "seed " << seed << " p " << p;
  }
}

TEST(BronKerbosch, MinSizePruningConsistent) {
  const Graph g = random_graph(16, 0.4, 77);
  const auto all = maximal_cliques(g);
  for (std::size_t min_size = 2; min_size <= 6; ++min_size) {
    std::vector<NodeSet> expected;
    for (const auto& c : all) {
      if (c.size() >= min_size) expected.push_back(c);
    }
    EXPECT_EQ(sorted_cliques(maximal_cliques(g, min_size)),
              sorted_cliques(std::move(expected)));
  }
}

TEST(BronKerbosch, EveryReportedCliqueIsMaximal) {
  const Graph g = random_graph(30, 0.3, 5);
  for (const auto& clique : maximal_cliques(g)) {
    // Clique check.
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(g.has_edge(clique[i], clique[j]));
      }
    }
    // Maximality check.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (std::binary_search(clique.begin(), clique.end(), v)) continue;
      bool extends = true;
      for (NodeId m : clique) {
        if (!g.has_edge(v, m)) {
          extends = false;
          break;
        }
      }
      EXPECT_FALSE(extends) << "node " << v << " extends a reported clique";
    }
  }
}

TEST(BronKerbosch, MaximumCliqueSize) {
  EXPECT_EQ(maximum_clique_size(complete_graph(9)), 9u);
  EXPECT_EQ(maximum_clique_size(cycle_graph(5)), 2u);
  EXPECT_EQ(maximum_clique_size(Graph{}), 0u);
  const Graph g = testing::overlapping_cliques(6, 4, 2);
  EXPECT_EQ(maximum_clique_size(g), 6u);
}

TEST(CliqueStats, HistogramAndRange) {
  const Graph g = testing::overlapping_cliques(5, 5, 3);
  const auto stats = compute_clique_stats(maximal_cliques(g));
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.max_size, 5u);
  EXPECT_EQ(stats.min_size, 5u);
  EXPECT_DOUBLE_EQ(stats.mean_size, 5.0);
  ASSERT_GT(stats.histogram.size(), 5u);
  EXPECT_EQ(stats.histogram[5], 2u);
  EXPECT_DOUBLE_EQ(stats.fraction_in_range(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(stats.fraction_in_range(6, 10), 0.0);
}

TEST(CliqueStats, EmptyInput) {
  const auto stats = compute_clique_stats({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.fraction_in_range(1, 10), 0.0);
}

// ---------------------------------------------------- clique::Enumerator

TEST(Enumerator, ParseAndNameRoundTrip) {
  using clique::Backend;
  EXPECT_EQ(clique::parse_backend("auto"), Backend::kAuto);
  EXPECT_EQ(clique::parse_backend("sparse"), Backend::kSparse);
  EXPECT_EQ(clique::parse_backend("bitset"), Backend::kBitset);
  for (Backend b : {Backend::kAuto, Backend::kSparse, Backend::kBitset}) {
    EXPECT_EQ(clique::parse_backend(clique::backend_name(b)), b);
  }
  EXPECT_THROW(clique::parse_backend("dense"), Error);
  EXPECT_THROW(clique::parse_backend(""), Error);
}

TEST(Enumerator, AutoResolvesByDegeneracy) {
  const clique::Options opts;  // kAuto
  // Trees and cycles (degeneracy <= 2) have tiny subproblems where bit rows
  // cannot pay for themselves; dense graphs resolve to the bitset kernel.
  EXPECT_EQ(clique::Enumerator(cycle_graph(8), opts).backend(),
            clique::Backend::kSparse);
  EXPECT_EQ(clique::Enumerator(complete_graph(6), opts).backend(),
            clique::Backend::kBitset);
  // Explicit requests are never overridden.
  clique::Options forced;
  forced.backend = clique::Backend::kBitset;
  EXPECT_EQ(clique::Enumerator(cycle_graph(8), forced).backend(),
            clique::Backend::kBitset);
}

TEST(Enumerator, MinSizeZeroRejected) {
  clique::Options opts;
  opts.min_size = 0;
  EXPECT_THROW(clique::Enumerator(complete_graph(3), opts), Error);
}

TEST(Enumerator, ExposesDegeneracy) {
  const Graph g = random_graph(40, 0.2, 7);
  const clique::Enumerator e(g);
  EXPECT_EQ(e.degeneracy().degeneracy, degeneracy_order(g).degeneracy);
}

TEST(Enumerator, BackendsAgreeIncludingVisitOrder) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = random_graph(50, 0.1 + 0.05 * double(seed), seed);
    clique::Options sparse;
    sparse.backend = clique::Backend::kSparse;
    clique::Options bitset;
    bitset.backend = clique::Backend::kBitset;
    // Vector equality checks contents *and* order — the deterministic
    // degeneracy-driven visit order must not depend on the kernel.
    EXPECT_EQ(clique::Enumerator(g, bitset).collect(),
              clique::Enumerator(g, sparse).collect())
        << "seed " << seed;
  }
}

TEST(Enumerator, ForEachMatchesCollect) {
  const Graph g = random_graph(40, 0.25, 13);
  const clique::Enumerator e(g);
  std::vector<NodeSet> seen;
  e.for_each([&](std::span<const NodeId> c) {
    seen.emplace_back(c.begin(), c.end());
  });
  EXPECT_EQ(seen, e.collect());
}

TEST(Enumerator, LegacyWrappersMatchFacade) {
  const Graph g = random_graph(45, 0.2, 17);
  EXPECT_EQ(maximal_cliques(g), clique::Enumerator(g).collect());
  clique::Options opts;
  opts.min_size = 3;
  EXPECT_EQ(maximal_cliques(g, 3), clique::Enumerator(g, opts).collect());
  std::vector<NodeSet> visited;
  for_each_maximal_clique(g, [&](const NodeSet& c) { visited.push_back(c); });
  EXPECT_EQ(visited, clique::Enumerator(g).collect());
}

TEST(ReferenceEnumerator, AllKCliquesOnCompleteGraph) {
  // C(5,3) = 10 triangles in K5.
  EXPECT_EQ(all_k_cliques(complete_graph(5), 3).size(), 10u);
  EXPECT_EQ(all_k_cliques(complete_graph(5), 5).size(), 1u);
  EXPECT_EQ(all_k_cliques(complete_graph(5), 6).size(), 0u);
}

TEST(ReferenceEnumerator, KCliquesAreCliques) {
  const Graph g = random_graph(12, 0.5, 9);
  for (const auto& c : all_k_cliques(g, 3)) {
    ASSERT_EQ(c.size(), 3u);
    EXPECT_TRUE(g.has_edge(c[0], c[1]));
    EXPECT_TRUE(g.has_edge(c[0], c[2]));
    EXPECT_TRUE(g.has_edge(c[1], c[2]));
  }
}

}  // namespace
}  // namespace kcc
