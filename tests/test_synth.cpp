#include "synth/as_topology.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/set_ops.h"
#include "data/tags.h"
#include "graph/graph_algorithms.h"

namespace kcc {
namespace {

const AsEcosystem& test_eco() {
  static const AsEcosystem eco = generate_ecosystem(SynthParams::test_scale());
  return eco;
}

TEST(SynthParams, PresetsValidate) {
  SynthParams::test_scale().validate();
  SynthParams::bench_scale().validate();
  SynthParams::paper_scale().validate();
}

TEST(SynthParams, InvalidParamsThrow) {
  SynthParams p = SynthParams::test_scale();
  p.num_ases = 10;
  EXPECT_THROW(p.validate(), Error);

  p = SynthParams::test_scale();
  p.apex_clique_size = p.big_core_size + 1;
  EXPECT_THROW(p.validate(), Error);

  p = SynthParams::test_scale();
  p.trunk_chain_max_k = p.crown_clique_min + 1;
  EXPECT_THROW(p.validate(), Error);

  p = SynthParams::test_scale();
  p.big_ixp_participants = p.big_core_size;  // no room for the middle ring
  EXPECT_THROW(p.validate(), Error);
}

TEST(Synth, DimensionsMatchParams) {
  const SynthParams p = SynthParams::test_scale();
  const AsEcosystem& eco = test_eco();
  EXPECT_EQ(eco.num_ases(), p.num_ases);
  EXPECT_EQ(eco.roles.size(), p.num_ases);
  EXPECT_EQ(eco.big_ixps.size(), p.big_ixp_count);
  EXPECT_LE(eco.ixps.count(), p.num_ixps);
  EXPECT_GE(eco.ixps.count(), p.big_ixp_count + 1);
}

TEST(Synth, DeterministicInSeed) {
  SynthParams p = SynthParams::test_scale();
  const AsEcosystem a = generate_ecosystem(p);
  const AsEcosystem b = generate_ecosystem(p);
  EXPECT_EQ(a.topology.graph.edges(), b.topology.graph.edges());
  EXPECT_EQ(a.apex_clique, b.apex_clique);
  ASSERT_EQ(a.ixps.count(), b.ixps.count());
  for (IxpId i = 0; i < a.ixps.count(); ++i) {
    EXPECT_EQ(a.ixps.ixp(i).participants, b.ixps.ixp(i).participants);
  }

  p.seed = 777;
  const AsEcosystem c = generate_ecosystem(p);
  EXPECT_NE(a.topology.graph.edges(), c.topology.graph.edges());
}

TEST(Synth, SingleConnectedComponent) {
  const auto labels = connected_components(test_eco().topology.graph);
  EXPECT_EQ(labels.count, 1u);
}

TEST(Synth, Tier1FullMesh) {
  const AsEcosystem& eco = test_eco();
  const Graph& g = eco.topology.graph;
  std::vector<NodeId> tier1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (eco.roles[v] == AsRole::kTier1) tier1.push_back(v);
  }
  EXPECT_EQ(tier1.size(), SynthParams::test_scale().num_tier1);
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      EXPECT_TRUE(g.has_edge(tier1[i], tier1[j]));
    }
  }
}

TEST(Synth, ApexCliqueIsPlanted) {
  const AsEcosystem& eco = test_eco();
  const Graph& g = eco.topology.graph;
  ASSERT_EQ(eco.apex_clique.size(),
            SynthParams::test_scale().apex_clique_size);
  for (std::size_t i = 0; i < eco.apex_clique.size(); ++i) {
    for (std::size_t j = i + 1; j < eco.apex_clique.size(); ++j) {
      EXPECT_TRUE(g.has_edge(eco.apex_clique[i], eco.apex_clique[j]));
    }
  }
}

TEST(Synth, ApexInsideEveryBigIxp) {
  const AsEcosystem& eco = test_eco();
  for (IxpId big : eco.big_ixps) {
    EXPECT_TRUE(is_subset(eco.apex_clique, eco.ixps.ixp(big).participants));
  }
}

TEST(Synth, SatellitesOffIxpAndAdjacentToApex) {
  const AsEcosystem& eco = test_eco();
  const Graph& g = eco.topology.graph;
  for (NodeId s : eco.apex_satellites) {
    EXPECT_FALSE(eco.ixps.is_on_ixp(s));
    std::size_t adjacent = 0;
    for (NodeId a : eco.apex_clique) {
      adjacent += g.has_edge(s, a) ? 1 : 0;
    }
    EXPECT_EQ(adjacent, eco.apex_clique.size() - 1);
  }
}

TEST(Synth, BigIxpsShareParticipants) {
  const AsEcosystem& eco = test_eco();
  ASSERT_GE(eco.big_ixps.size(), 2u);
  const auto& a = eco.ixps.ixp(eco.big_ixps[0]).participants;
  const auto& b = eco.ixps.ixp(eco.big_ixps[1]).participants;
  EXPECT_GE(intersection_size(a, b),
            SynthParams::test_scale().big_core_size);
}

TEST(Synth, RolesPartitionThePopulation) {
  const AsEcosystem& eco = test_eco();
  std::size_t tier1 = 0, transit = 0, stub = 0;
  for (AsRole r : eco.roles) {
    switch (r) {
      case AsRole::kTier1:
        ++tier1;
        break;
      case AsRole::kTransit:
        ++transit;
        break;
      case AsRole::kStub:
        ++stub;
        break;
    }
  }
  const SynthParams p = SynthParams::test_scale();
  EXPECT_EQ(tier1, p.num_tier1);
  EXPECT_EQ(transit,
            static_cast<std::size_t>(p.transit_fraction * double(p.num_ases)));
  EXPECT_EQ(tier1 + transit + stub, p.num_ases);
}

TEST(Synth, GeoTagMixLooksLikeTable22) {
  const AsEcosystem& eco = test_eco();
  const GeoTagCounts counts = count_geo_tags(eco.geo, eco.num_ases());
  const double n = double(eco.num_ases());
  // Paper: 88% national, ~3% continental, ~4% worldwide, ~4% unknown.
  EXPECT_GT(counts.national / n, 0.6);
  EXPECT_GT(counts.worldwide, 0u);
  EXPECT_GT(counts.continental, 0u);
  EXPECT_GT(counts.unknown, 0u);
  EXPECT_LT(counts.unknown / n, 0.15);
}

TEST(Synth, OnIxpMinorityLikeTable21) {
  const AsEcosystem& eco = test_eco();
  const IxpTagCounts counts = count_ixp_tags(eco.ixps, eco.num_ases());
  EXPECT_GT(counts.on_ixp, 0u);
  EXPECT_GT(counts.not_on_ixp, counts.on_ixp);  // on-IXP ASes are a minority
}

TEST(Synth, Tier1AreWorldwide) {
  const AsEcosystem& eco = test_eco();
  for (NodeId v = 0; v < eco.num_ases(); ++v) {
    if (eco.roles[v] == AsRole::kTier1) {
      EXPECT_EQ(classify_geo(eco.geo, v), GeoTag::kWorldwide);
    }
  }
}

TEST(Synth, LabelsAreAsNumbers) {
  const AsEcosystem& eco = test_eco();
  EXPECT_EQ(eco.topology.labels.size(), eco.num_ases());
  EXPECT_EQ(eco.topology.labels.front(), 1u);
  EXPECT_EQ(eco.topology.labels.back(), eco.num_ases());
}

TEST(Synth, DegreeDistributionIsHeavyTailed) {
  const Graph& g = test_eco().topology.graph;
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max, 20u * static_cast<std::size_t>(stats.median + 1));
  EXPECT_GE(stats.min, 1u);  // single component, no isolated nodes
}

TEST(Synth, RoleNames) {
  EXPECT_STREQ(as_role_name(AsRole::kTier1), "tier1");
  EXPECT_STREQ(as_role_name(AsRole::kTransit), "transit");
  EXPECT_STREQ(as_role_name(AsRole::kStub), "stub");
}

}  // namespace
}  // namespace kcc
