file(REMOVE_RECURSE
  "CMakeFiles/regional_communities.dir/regional_communities.cpp.o"
  "CMakeFiles/regional_communities.dir/regional_communities.cpp.o.d"
  "regional_communities"
  "regional_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
