# Empty compiler generated dependencies file for regional_communities.
# This may be replaced when dependencies are built.
