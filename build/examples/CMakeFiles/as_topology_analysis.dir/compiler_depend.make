# Empty compiler generated dependencies file for as_topology_analysis.
# This may be replaced when dependencies are built.
