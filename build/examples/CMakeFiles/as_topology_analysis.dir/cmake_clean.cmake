file(REMOVE_RECURSE
  "CMakeFiles/as_topology_analysis.dir/as_topology_analysis.cpp.o"
  "CMakeFiles/as_topology_analysis.dir/as_topology_analysis.cpp.o.d"
  "as_topology_analysis"
  "as_topology_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_topology_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
