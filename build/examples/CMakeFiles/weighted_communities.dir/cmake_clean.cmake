file(REMOVE_RECURSE
  "CMakeFiles/weighted_communities.dir/weighted_communities.cpp.o"
  "CMakeFiles/weighted_communities.dir/weighted_communities.cpp.o.d"
  "weighted_communities"
  "weighted_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
