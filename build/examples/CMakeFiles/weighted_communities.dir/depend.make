# Empty dependencies file for weighted_communities.
# This may be replaced when dependencies are built.
