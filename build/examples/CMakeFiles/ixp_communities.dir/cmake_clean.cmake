file(REMOVE_RECURSE
  "CMakeFiles/ixp_communities.dir/ixp_communities.cpp.o"
  "CMakeFiles/ixp_communities.dir/ixp_communities.cpp.o.d"
  "ixp_communities"
  "ixp_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixp_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
