# Empty compiler generated dependencies file for ixp_communities.
# This may be replaced when dependencies are built.
