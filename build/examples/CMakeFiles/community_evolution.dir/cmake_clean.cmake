file(REMOVE_RECURSE
  "CMakeFiles/community_evolution.dir/community_evolution.cpp.o"
  "CMakeFiles/community_evolution.dir/community_evolution.cpp.o.d"
  "community_evolution"
  "community_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
