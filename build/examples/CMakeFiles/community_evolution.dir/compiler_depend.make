# Empty compiler generated dependencies file for community_evolution.
# This may be replaced when dependencies are built.
