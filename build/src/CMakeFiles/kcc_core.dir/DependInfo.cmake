
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/percolation_threshold.cpp" "src/CMakeFiles/kcc_core.dir/analysis/percolation_threshold.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/analysis/percolation_threshold.cpp.o.d"
  "/root/repo/src/analysis/pipeline.cpp" "src/CMakeFiles/kcc_core.dir/analysis/pipeline.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/analysis/pipeline.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/kcc_core.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/robustness.cpp" "src/CMakeFiles/kcc_core.dir/analysis/robustness.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/analysis/robustness.cpp.o.d"
  "/root/repo/src/analysis/temporal.cpp" "src/CMakeFiles/kcc_core.dir/analysis/temporal.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/analysis/temporal.cpp.o.d"
  "/root/repo/src/baselines/gce.cpp" "src/CMakeFiles/kcc_core.dir/baselines/gce.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/baselines/gce.cpp.o.d"
  "/root/repo/src/baselines/kcore.cpp" "src/CMakeFiles/kcc_core.dir/baselines/kcore.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/baselines/kcore.cpp.o.d"
  "/root/repo/src/baselines/kdense.cpp" "src/CMakeFiles/kcc_core.dir/baselines/kdense.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/baselines/kdense.cpp.o.d"
  "/root/repo/src/baselines/louvain.cpp" "src/CMakeFiles/kcc_core.dir/baselines/louvain.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/baselines/louvain.cpp.o.d"
  "/root/repo/src/clique/bron_kerbosch.cpp" "src/CMakeFiles/kcc_core.dir/clique/bron_kerbosch.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/clique/bron_kerbosch.cpp.o.d"
  "/root/repo/src/clique/clique_stats.cpp" "src/CMakeFiles/kcc_core.dir/clique/clique_stats.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/clique/clique_stats.cpp.o.d"
  "/root/repo/src/clique/parallel_cliques.cpp" "src/CMakeFiles/kcc_core.dir/clique/parallel_cliques.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/clique/parallel_cliques.cpp.o.d"
  "/root/repo/src/clique/reference_enumerator.cpp" "src/CMakeFiles/kcc_core.dir/clique/reference_enumerator.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/clique/reference_enumerator.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/kcc_core.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/kcc_core.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/common/error.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/kcc_core.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/kcc_core.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/common/union_find.cpp" "src/CMakeFiles/kcc_core.dir/common/union_find.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/common/union_find.cpp.o.d"
  "/root/repo/src/cpm/clique_index.cpp" "src/CMakeFiles/kcc_core.dir/cpm/clique_index.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/cpm/clique_index.cpp.o.d"
  "/root/repo/src/cpm/community.cpp" "src/CMakeFiles/kcc_core.dir/cpm/community.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/cpm/community.cpp.o.d"
  "/root/repo/src/cpm/community_tree.cpp" "src/CMakeFiles/kcc_core.dir/cpm/community_tree.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/cpm/community_tree.cpp.o.d"
  "/root/repo/src/cpm/cpm.cpp" "src/CMakeFiles/kcc_core.dir/cpm/cpm.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/cpm/cpm.cpp.o.d"
  "/root/repo/src/cpm/reference_cpm.cpp" "src/CMakeFiles/kcc_core.dir/cpm/reference_cpm.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/cpm/reference_cpm.cpp.o.d"
  "/root/repo/src/cpm/weighted_cpm.cpp" "src/CMakeFiles/kcc_core.dir/cpm/weighted_cpm.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/cpm/weighted_cpm.cpp.o.d"
  "/root/repo/src/data/geography.cpp" "src/CMakeFiles/kcc_core.dir/data/geography.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/data/geography.cpp.o.d"
  "/root/repo/src/data/ixp.cpp" "src/CMakeFiles/kcc_core.dir/data/ixp.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/data/ixp.cpp.o.d"
  "/root/repo/src/data/relationships.cpp" "src/CMakeFiles/kcc_core.dir/data/relationships.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/data/relationships.cpp.o.d"
  "/root/repo/src/data/tag_analysis.cpp" "src/CMakeFiles/kcc_core.dir/data/tag_analysis.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/data/tag_analysis.cpp.o.d"
  "/root/repo/src/data/tags.cpp" "src/CMakeFiles/kcc_core.dir/data/tags.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/data/tags.cpp.o.d"
  "/root/repo/src/graph/clustering.cpp" "src/CMakeFiles/kcc_core.dir/graph/clustering.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/clustering.cpp.o.d"
  "/root/repo/src/graph/degeneracy.cpp" "src/CMakeFiles/kcc_core.dir/graph/degeneracy.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/degeneracy.cpp.o.d"
  "/root/repo/src/graph/degree_distribution.cpp" "src/CMakeFiles/kcc_core.dir/graph/degree_distribution.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/degree_distribution.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/kcc_core.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/graph_algorithms.cpp" "src/CMakeFiles/kcc_core.dir/graph/graph_algorithms.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/graph_algorithms.cpp.o.d"
  "/root/repo/src/graph/graph_builder.cpp" "src/CMakeFiles/kcc_core.dir/graph/graph_builder.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/graph_builder.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/CMakeFiles/kcc_core.dir/graph/subgraph.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/subgraph.cpp.o.d"
  "/root/repo/src/graph/weighted_graph.cpp" "src/CMakeFiles/kcc_core.dir/graph/weighted_graph.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/graph/weighted_graph.cpp.o.d"
  "/root/repo/src/io/community_export.cpp" "src/CMakeFiles/kcc_core.dir/io/community_export.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/io/community_export.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/kcc_core.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/dataset_io.cpp" "src/CMakeFiles/kcc_core.dir/io/dataset_io.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/io/dataset_io.cpp.o.d"
  "/root/repo/src/io/dot_export.cpp" "src/CMakeFiles/kcc_core.dir/io/dot_export.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/io/dot_export.cpp.o.d"
  "/root/repo/src/io/edge_list.cpp" "src/CMakeFiles/kcc_core.dir/io/edge_list.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/io/edge_list.cpp.o.d"
  "/root/repo/src/io/result_io.cpp" "src/CMakeFiles/kcc_core.dir/io/result_io.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/io/result_io.cpp.o.d"
  "/root/repo/src/metrics/community_metrics.cpp" "src/CMakeFiles/kcc_core.dir/metrics/community_metrics.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/community_metrics.cpp.o.d"
  "/root/repo/src/metrics/cover_stats.cpp" "src/CMakeFiles/kcc_core.dir/metrics/cover_stats.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/cover_stats.cpp.o.d"
  "/root/repo/src/metrics/modularity.cpp" "src/CMakeFiles/kcc_core.dir/metrics/modularity.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/modularity.cpp.o.d"
  "/root/repo/src/metrics/overlap.cpp" "src/CMakeFiles/kcc_core.dir/metrics/overlap.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/overlap.cpp.o.d"
  "/root/repo/src/metrics/scoring.cpp" "src/CMakeFiles/kcc_core.dir/metrics/scoring.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/scoring.cpp.o.d"
  "/root/repo/src/metrics/similarity.cpp" "src/CMakeFiles/kcc_core.dir/metrics/similarity.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/similarity.cpp.o.d"
  "/root/repo/src/metrics/zp_roles.cpp" "src/CMakeFiles/kcc_core.dir/metrics/zp_roles.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/metrics/zp_roles.cpp.o.d"
  "/root/repo/src/synth/as_topology.cpp" "src/CMakeFiles/kcc_core.dir/synth/as_topology.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/synth/as_topology.cpp.o.d"
  "/root/repo/src/synth/params.cpp" "src/CMakeFiles/kcc_core.dir/synth/params.cpp.o" "gcc" "src/CMakeFiles/kcc_core.dir/synth/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
