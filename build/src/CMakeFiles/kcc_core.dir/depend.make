# Empty dependencies file for kcc_core.
# This may be replaced when dependencies are built.
