file(REMOVE_RECURSE
  "libkcc_core.a"
)
