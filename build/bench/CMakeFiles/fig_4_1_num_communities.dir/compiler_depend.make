# Empty compiler generated dependencies file for fig_4_1_num_communities.
# This may be replaced when dependencies are built.
