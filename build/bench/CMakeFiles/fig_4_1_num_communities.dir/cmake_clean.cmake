file(REMOVE_RECURSE
  "CMakeFiles/fig_4_1_num_communities.dir/fig_4_1_num_communities.cpp.o"
  "CMakeFiles/fig_4_1_num_communities.dir/fig_4_1_num_communities.cpp.o.d"
  "CMakeFiles/fig_4_1_num_communities.dir/harness.cpp.o"
  "CMakeFiles/fig_4_1_num_communities.dir/harness.cpp.o.d"
  "fig_4_1_num_communities"
  "fig_4_1_num_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_4_1_num_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
