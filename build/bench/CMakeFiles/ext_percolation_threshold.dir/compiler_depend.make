# Empty compiler generated dependencies file for ext_percolation_threshold.
# This may be replaced when dependencies are built.
