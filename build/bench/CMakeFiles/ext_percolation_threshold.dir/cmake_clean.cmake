file(REMOVE_RECURSE
  "CMakeFiles/ext_percolation_threshold.dir/ext_percolation_threshold.cpp.o"
  "CMakeFiles/ext_percolation_threshold.dir/ext_percolation_threshold.cpp.o.d"
  "CMakeFiles/ext_percolation_threshold.dir/harness.cpp.o"
  "CMakeFiles/ext_percolation_threshold.dir/harness.cpp.o.d"
  "ext_percolation_threshold"
  "ext_percolation_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_percolation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
