file(REMOVE_RECURSE
  "CMakeFiles/perf_cpm.dir/perf_cpm.cpp.o"
  "CMakeFiles/perf_cpm.dir/perf_cpm.cpp.o.d"
  "perf_cpm"
  "perf_cpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
