# Empty compiler generated dependencies file for perf_cpm.
# This may be replaced when dependencies are built.
