file(REMOVE_RECURSE
  "CMakeFiles/table_2_1_ixp_tagging.dir/harness.cpp.o"
  "CMakeFiles/table_2_1_ixp_tagging.dir/harness.cpp.o.d"
  "CMakeFiles/table_2_1_ixp_tagging.dir/table_2_1_ixp_tagging.cpp.o"
  "CMakeFiles/table_2_1_ixp_tagging.dir/table_2_1_ixp_tagging.cpp.o.d"
  "table_2_1_ixp_tagging"
  "table_2_1_ixp_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_2_1_ixp_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
