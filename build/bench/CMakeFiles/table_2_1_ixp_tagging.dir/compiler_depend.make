# Empty compiler generated dependencies file for table_2_1_ixp_tagging.
# This may be replaced when dependencies are built.
