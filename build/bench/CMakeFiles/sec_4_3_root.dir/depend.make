# Empty dependencies file for sec_4_3_root.
# This may be replaced when dependencies are built.
