file(REMOVE_RECURSE
  "CMakeFiles/sec_4_3_root.dir/harness.cpp.o"
  "CMakeFiles/sec_4_3_root.dir/harness.cpp.o.d"
  "CMakeFiles/sec_4_3_root.dir/sec_4_3_root.cpp.o"
  "CMakeFiles/sec_4_3_root.dir/sec_4_3_root.cpp.o.d"
  "sec_4_3_root"
  "sec_4_3_root.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_4_3_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
