file(REMOVE_RECURSE
  "CMakeFiles/ext_relationships.dir/ext_relationships.cpp.o"
  "CMakeFiles/ext_relationships.dir/ext_relationships.cpp.o.d"
  "CMakeFiles/ext_relationships.dir/harness.cpp.o"
  "CMakeFiles/ext_relationships.dir/harness.cpp.o.d"
  "ext_relationships"
  "ext_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
