# Empty dependencies file for ext_relationships.
# This may be replaced when dependencies are built.
