file(REMOVE_RECURSE
  "CMakeFiles/fig_4_4a_link_density.dir/fig_4_4a_link_density.cpp.o"
  "CMakeFiles/fig_4_4a_link_density.dir/fig_4_4a_link_density.cpp.o.d"
  "CMakeFiles/fig_4_4a_link_density.dir/harness.cpp.o"
  "CMakeFiles/fig_4_4a_link_density.dir/harness.cpp.o.d"
  "fig_4_4a_link_density"
  "fig_4_4a_link_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_4_4a_link_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
