# Empty compiler generated dependencies file for fig_4_4a_link_density.
# This may be replaced when dependencies are built.
