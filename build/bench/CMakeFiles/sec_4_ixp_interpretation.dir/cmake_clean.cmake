file(REMOVE_RECURSE
  "CMakeFiles/sec_4_ixp_interpretation.dir/harness.cpp.o"
  "CMakeFiles/sec_4_ixp_interpretation.dir/harness.cpp.o.d"
  "CMakeFiles/sec_4_ixp_interpretation.dir/sec_4_ixp_interpretation.cpp.o"
  "CMakeFiles/sec_4_ixp_interpretation.dir/sec_4_ixp_interpretation.cpp.o.d"
  "sec_4_ixp_interpretation"
  "sec_4_ixp_interpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_4_ixp_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
