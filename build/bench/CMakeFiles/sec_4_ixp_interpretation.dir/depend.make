# Empty dependencies file for sec_4_ixp_interpretation.
# This may be replaced when dependencies are built.
