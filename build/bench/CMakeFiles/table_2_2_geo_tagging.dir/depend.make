# Empty dependencies file for table_2_2_geo_tagging.
# This may be replaced when dependencies are built.
