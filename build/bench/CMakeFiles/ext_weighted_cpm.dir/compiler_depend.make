# Empty compiler generated dependencies file for ext_weighted_cpm.
# This may be replaced when dependencies are built.
