file(REMOVE_RECURSE
  "CMakeFiles/ext_weighted_cpm.dir/ext_weighted_cpm.cpp.o"
  "CMakeFiles/ext_weighted_cpm.dir/ext_weighted_cpm.cpp.o.d"
  "CMakeFiles/ext_weighted_cpm.dir/harness.cpp.o"
  "CMakeFiles/ext_weighted_cpm.dir/harness.cpp.o.d"
  "ext_weighted_cpm"
  "ext_weighted_cpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_weighted_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
