file(REMOVE_RECURSE
  "CMakeFiles/ext_temporal_evolution.dir/ext_temporal_evolution.cpp.o"
  "CMakeFiles/ext_temporal_evolution.dir/ext_temporal_evolution.cpp.o.d"
  "CMakeFiles/ext_temporal_evolution.dir/harness.cpp.o"
  "CMakeFiles/ext_temporal_evolution.dir/harness.cpp.o.d"
  "ext_temporal_evolution"
  "ext_temporal_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_temporal_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
