# Empty dependencies file for ext_temporal_evolution.
# This may be replaced when dependencies are built.
