file(REMOVE_RECURSE
  "CMakeFiles/sec_4_2_trunk.dir/harness.cpp.o"
  "CMakeFiles/sec_4_2_trunk.dir/harness.cpp.o.d"
  "CMakeFiles/sec_4_2_trunk.dir/sec_4_2_trunk.cpp.o"
  "CMakeFiles/sec_4_2_trunk.dir/sec_4_2_trunk.cpp.o.d"
  "sec_4_2_trunk"
  "sec_4_2_trunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_4_2_trunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
