# Empty dependencies file for sec_4_2_trunk.
# This may be replaced when dependencies are built.
