# Empty dependencies file for sec_3_clique_histogram.
# This may be replaced when dependencies are built.
