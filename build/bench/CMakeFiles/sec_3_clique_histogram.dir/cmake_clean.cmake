file(REMOVE_RECURSE
  "CMakeFiles/sec_3_clique_histogram.dir/harness.cpp.o"
  "CMakeFiles/sec_3_clique_histogram.dir/harness.cpp.o.d"
  "CMakeFiles/sec_3_clique_histogram.dir/sec_3_clique_histogram.cpp.o"
  "CMakeFiles/sec_3_clique_histogram.dir/sec_3_clique_histogram.cpp.o.d"
  "sec_3_clique_histogram"
  "sec_3_clique_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_3_clique_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
