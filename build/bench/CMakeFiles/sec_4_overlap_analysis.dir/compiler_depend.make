# Empty compiler generated dependencies file for sec_4_overlap_analysis.
# This may be replaced when dependencies are built.
