file(REMOVE_RECURSE
  "CMakeFiles/sec_4_overlap_analysis.dir/harness.cpp.o"
  "CMakeFiles/sec_4_overlap_analysis.dir/harness.cpp.o.d"
  "CMakeFiles/sec_4_overlap_analysis.dir/sec_4_overlap_analysis.cpp.o"
  "CMakeFiles/sec_4_overlap_analysis.dir/sec_4_overlap_analysis.cpp.o.d"
  "sec_4_overlap_analysis"
  "sec_4_overlap_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_4_overlap_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
