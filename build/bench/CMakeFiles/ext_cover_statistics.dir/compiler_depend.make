# Empty compiler generated dependencies file for ext_cover_statistics.
# This may be replaced when dependencies are built.
