file(REMOVE_RECURSE
  "CMakeFiles/ext_cover_statistics.dir/ext_cover_statistics.cpp.o"
  "CMakeFiles/ext_cover_statistics.dir/ext_cover_statistics.cpp.o.d"
  "CMakeFiles/ext_cover_statistics.dir/harness.cpp.o"
  "CMakeFiles/ext_cover_statistics.dir/harness.cpp.o.d"
  "ext_cover_statistics"
  "ext_cover_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cover_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
