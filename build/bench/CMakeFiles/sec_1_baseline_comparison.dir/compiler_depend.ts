# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec_1_baseline_comparison.
