file(REMOVE_RECURSE
  "CMakeFiles/sec_1_baseline_comparison.dir/harness.cpp.o"
  "CMakeFiles/sec_1_baseline_comparison.dir/harness.cpp.o.d"
  "CMakeFiles/sec_1_baseline_comparison.dir/sec_1_baseline_comparison.cpp.o"
  "CMakeFiles/sec_1_baseline_comparison.dir/sec_1_baseline_comparison.cpp.o.d"
  "sec_1_baseline_comparison"
  "sec_1_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_1_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
