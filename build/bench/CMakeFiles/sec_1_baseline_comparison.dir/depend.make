# Empty dependencies file for sec_1_baseline_comparison.
# This may be replaced when dependencies are built.
