file(REMOVE_RECURSE
  "CMakeFiles/ext_zp_roles.dir/ext_zp_roles.cpp.o"
  "CMakeFiles/ext_zp_roles.dir/ext_zp_roles.cpp.o.d"
  "CMakeFiles/ext_zp_roles.dir/harness.cpp.o"
  "CMakeFiles/ext_zp_roles.dir/harness.cpp.o.d"
  "ext_zp_roles"
  "ext_zp_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_zp_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
