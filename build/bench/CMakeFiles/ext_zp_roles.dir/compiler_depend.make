# Empty compiler generated dependencies file for ext_zp_roles.
# This may be replaced when dependencies are built.
