# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig_4_3_community_size.
