# Empty compiler generated dependencies file for fig_4_3_community_size.
# This may be replaced when dependencies are built.
