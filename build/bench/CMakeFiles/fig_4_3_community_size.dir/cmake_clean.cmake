file(REMOVE_RECURSE
  "CMakeFiles/fig_4_3_community_size.dir/fig_4_3_community_size.cpp.o"
  "CMakeFiles/fig_4_3_community_size.dir/fig_4_3_community_size.cpp.o.d"
  "CMakeFiles/fig_4_3_community_size.dir/harness.cpp.o"
  "CMakeFiles/fig_4_3_community_size.dir/harness.cpp.o.d"
  "fig_4_3_community_size"
  "fig_4_3_community_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_4_3_community_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
