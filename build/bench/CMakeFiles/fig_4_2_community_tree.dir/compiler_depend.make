# Empty compiler generated dependencies file for fig_4_2_community_tree.
# This may be replaced when dependencies are built.
