# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig_4_2_community_tree.
