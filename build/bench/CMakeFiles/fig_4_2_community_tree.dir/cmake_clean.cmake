file(REMOVE_RECURSE
  "CMakeFiles/fig_4_2_community_tree.dir/fig_4_2_community_tree.cpp.o"
  "CMakeFiles/fig_4_2_community_tree.dir/fig_4_2_community_tree.cpp.o.d"
  "CMakeFiles/fig_4_2_community_tree.dir/harness.cpp.o"
  "CMakeFiles/fig_4_2_community_tree.dir/harness.cpp.o.d"
  "fig_4_2_community_tree"
  "fig_4_2_community_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_4_2_community_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
