# Empty dependencies file for perf_cliques.
# This may be replaced when dependencies are built.
