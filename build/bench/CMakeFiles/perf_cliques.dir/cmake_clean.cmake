file(REMOVE_RECURSE
  "CMakeFiles/perf_cliques.dir/perf_cliques.cpp.o"
  "CMakeFiles/perf_cliques.dir/perf_cliques.cpp.o.d"
  "perf_cliques"
  "perf_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
