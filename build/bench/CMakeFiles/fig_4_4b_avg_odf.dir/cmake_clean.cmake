file(REMOVE_RECURSE
  "CMakeFiles/fig_4_4b_avg_odf.dir/fig_4_4b_avg_odf.cpp.o"
  "CMakeFiles/fig_4_4b_avg_odf.dir/fig_4_4b_avg_odf.cpp.o.d"
  "CMakeFiles/fig_4_4b_avg_odf.dir/harness.cpp.o"
  "CMakeFiles/fig_4_4b_avg_odf.dir/harness.cpp.o.d"
  "fig_4_4b_avg_odf"
  "fig_4_4b_avg_odf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_4_4b_avg_odf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
