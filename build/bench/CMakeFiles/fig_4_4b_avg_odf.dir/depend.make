# Empty dependencies file for fig_4_4b_avg_odf.
# This may be replaced when dependencies are built.
