file(REMOVE_RECURSE
  "CMakeFiles/perf_baselines.dir/perf_baselines.cpp.o"
  "CMakeFiles/perf_baselines.dir/perf_baselines.cpp.o.d"
  "perf_baselines"
  "perf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
