# Empty compiler generated dependencies file for perf_baselines.
# This may be replaced when dependencies are built.
