file(REMOVE_RECURSE
  "CMakeFiles/sec_4_1_crown.dir/harness.cpp.o"
  "CMakeFiles/sec_4_1_crown.dir/harness.cpp.o.d"
  "CMakeFiles/sec_4_1_crown.dir/sec_4_1_crown.cpp.o"
  "CMakeFiles/sec_4_1_crown.dir/sec_4_1_crown.cpp.o.d"
  "sec_4_1_crown"
  "sec_4_1_crown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_4_1_crown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
