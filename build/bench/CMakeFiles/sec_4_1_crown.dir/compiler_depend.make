# Empty compiler generated dependencies file for sec_4_1_crown.
# This may be replaced when dependencies are built.
