# Empty dependencies file for ext_seed_stability.
# This may be replaced when dependencies are built.
