file(REMOVE_RECURSE
  "CMakeFiles/ext_seed_stability.dir/ext_seed_stability.cpp.o"
  "CMakeFiles/ext_seed_stability.dir/ext_seed_stability.cpp.o.d"
  "CMakeFiles/ext_seed_stability.dir/harness.cpp.o"
  "CMakeFiles/ext_seed_stability.dir/harness.cpp.o.d"
  "ext_seed_stability"
  "ext_seed_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seed_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
