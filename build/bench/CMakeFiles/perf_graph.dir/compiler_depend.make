# Empty compiler generated dependencies file for perf_graph.
# This may be replaced when dependencies are built.
