file(REMOVE_RECURSE
  "CMakeFiles/perf_graph.dir/perf_graph.cpp.o"
  "CMakeFiles/perf_graph.dir/perf_graph.cpp.o.d"
  "perf_graph"
  "perf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
