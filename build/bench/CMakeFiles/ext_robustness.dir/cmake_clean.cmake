file(REMOVE_RECURSE
  "CMakeFiles/ext_robustness.dir/ext_robustness.cpp.o"
  "CMakeFiles/ext_robustness.dir/ext_robustness.cpp.o.d"
  "CMakeFiles/ext_robustness.dir/harness.cpp.o"
  "CMakeFiles/ext_robustness.dir/harness.cpp.o.d"
  "ext_robustness"
  "ext_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
