# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kcc_cli_generate "/root/repo/build/tools/kcc" "generate" "--out-dir=/root/repo/build/tools/data" "--scale=test" "--seed=5")
set_tests_properties(kcc_cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kcc_cli_info "/root/repo/build/tools/kcc" "info" "--edges=/root/repo/build/tools/data/topology.txt")
set_tests_properties(kcc_cli_info PROPERTIES  DEPENDS "kcc_cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kcc_cli_cpm "/root/repo/build/tools/kcc" "cpm" "--edges=/root/repo/build/tools/data/topology.txt" "--max-k=6" "--out=/root/repo/build/tools/result.txt")
set_tests_properties(kcc_cli_cpm PROPERTIES  DEPENDS "kcc_cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kcc_cli_tree "/root/repo/build/tools/kcc" "tree" "--edges=/root/repo/build/tools/data/topology.txt" "--dot=/root/repo/build/tools/tree.dot")
set_tests_properties(kcc_cli_tree PROPERTIES  DEPENDS "kcc_cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kcc_cli_analyze "/root/repo/build/tools/kcc" "analyze" "--edges=/root/repo/build/tools/data/topology.txt" "--ixps=/root/repo/build/tools/data/ixps.txt" "--countries=/root/repo/build/tools/data/countries.txt" "--geo=/root/repo/build/tools/data/geo.txt")
set_tests_properties(kcc_cli_analyze PROPERTIES  DEPENDS "kcc_cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kcc_cli_bad_command "/root/repo/build/tools/kcc" "frobnicate")
set_tests_properties(kcc_cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
