file(REMOVE_RECURSE
  "CMakeFiles/kcc.dir/kcc.cpp.o"
  "CMakeFiles/kcc.dir/kcc.cpp.o.d"
  "kcc"
  "kcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
