# Empty dependencies file for kcc.
# This may be replaced when dependencies are built.
