file(REMOVE_RECURSE
  "CMakeFiles/test_clustering.dir/test_clustering.cpp.o"
  "CMakeFiles/test_clustering.dir/test_clustering.cpp.o.d"
  "test_clustering"
  "test_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
