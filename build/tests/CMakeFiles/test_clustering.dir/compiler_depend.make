# Empty compiler generated dependencies file for test_clustering.
# This may be replaced when dependencies are built.
