# Empty dependencies file for test_clique_index.
# This may be replaced when dependencies are built.
