file(REMOVE_RECURSE
  "CMakeFiles/test_clique_index.dir/test_clique_index.cpp.o"
  "CMakeFiles/test_clique_index.dir/test_clique_index.cpp.o.d"
  "test_clique_index"
  "test_clique_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
