# Empty dependencies file for test_result_io.
# This may be replaced when dependencies are built.
