file(REMOVE_RECURSE
  "CMakeFiles/test_result_io.dir/test_result_io.cpp.o"
  "CMakeFiles/test_result_io.dir/test_result_io.cpp.o.d"
  "test_result_io"
  "test_result_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
