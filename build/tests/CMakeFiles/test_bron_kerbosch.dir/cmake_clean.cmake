file(REMOVE_RECURSE
  "CMakeFiles/test_bron_kerbosch.dir/test_bron_kerbosch.cpp.o"
  "CMakeFiles/test_bron_kerbosch.dir/test_bron_kerbosch.cpp.o.d"
  "test_bron_kerbosch"
  "test_bron_kerbosch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bron_kerbosch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
