# Empty compiler generated dependencies file for test_bron_kerbosch.
# This may be replaced when dependencies are built.
