# Empty compiler generated dependencies file for test_relationships.
# This may be replaced when dependencies are built.
