file(REMOVE_RECURSE
  "CMakeFiles/test_relationships.dir/test_relationships.cpp.o"
  "CMakeFiles/test_relationships.dir/test_relationships.cpp.o.d"
  "test_relationships"
  "test_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
