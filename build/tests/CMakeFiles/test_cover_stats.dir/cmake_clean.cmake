file(REMOVE_RECURSE
  "CMakeFiles/test_cover_stats.dir/test_cover_stats.cpp.o"
  "CMakeFiles/test_cover_stats.dir/test_cover_stats.cpp.o.d"
  "test_cover_stats"
  "test_cover_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cover_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
