# Empty dependencies file for test_cover_stats.
# This may be replaced when dependencies are built.
