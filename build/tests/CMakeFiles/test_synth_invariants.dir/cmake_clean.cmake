file(REMOVE_RECURSE
  "CMakeFiles/test_synth_invariants.dir/test_synth_invariants.cpp.o"
  "CMakeFiles/test_synth_invariants.dir/test_synth_invariants.cpp.o.d"
  "test_synth_invariants"
  "test_synth_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
