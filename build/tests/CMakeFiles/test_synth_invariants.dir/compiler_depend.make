# Empty compiler generated dependencies file for test_synth_invariants.
# This may be replaced when dependencies are built.
