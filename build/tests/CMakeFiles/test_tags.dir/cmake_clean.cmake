file(REMOVE_RECURSE
  "CMakeFiles/test_tags.dir/test_tags.cpp.o"
  "CMakeFiles/test_tags.dir/test_tags.cpp.o.d"
  "test_tags"
  "test_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
