# Empty dependencies file for test_tags.
# This may be replaced when dependencies are built.
