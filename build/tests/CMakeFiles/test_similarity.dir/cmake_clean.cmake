file(REMOVE_RECURSE
  "CMakeFiles/test_similarity.dir/test_similarity.cpp.o"
  "CMakeFiles/test_similarity.dir/test_similarity.cpp.o.d"
  "test_similarity"
  "test_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
