# Empty compiler generated dependencies file for test_similarity.
# This may be replaced when dependencies are built.
