# Empty compiler generated dependencies file for test_community_export.
# This may be replaced when dependencies are built.
