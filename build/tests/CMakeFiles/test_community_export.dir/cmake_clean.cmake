file(REMOVE_RECURSE
  "CMakeFiles/test_community_export.dir/test_community_export.cpp.o"
  "CMakeFiles/test_community_export.dir/test_community_export.cpp.o.d"
  "test_community_export"
  "test_community_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_community_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
