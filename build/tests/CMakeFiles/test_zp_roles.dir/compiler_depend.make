# Empty compiler generated dependencies file for test_zp_roles.
# This may be replaced when dependencies are built.
