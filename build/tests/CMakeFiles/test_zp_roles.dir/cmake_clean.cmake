file(REMOVE_RECURSE
  "CMakeFiles/test_zp_roles.dir/test_zp_roles.cpp.o"
  "CMakeFiles/test_zp_roles.dir/test_zp_roles.cpp.o.d"
  "test_zp_roles"
  "test_zp_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zp_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
