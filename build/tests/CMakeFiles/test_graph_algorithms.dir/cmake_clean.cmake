file(REMOVE_RECURSE
  "CMakeFiles/test_graph_algorithms.dir/test_graph_algorithms.cpp.o"
  "CMakeFiles/test_graph_algorithms.dir/test_graph_algorithms.cpp.o.d"
  "test_graph_algorithms"
  "test_graph_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
