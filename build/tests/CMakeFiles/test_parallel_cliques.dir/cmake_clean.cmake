file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_cliques.dir/test_parallel_cliques.cpp.o"
  "CMakeFiles/test_parallel_cliques.dir/test_parallel_cliques.cpp.o.d"
  "test_parallel_cliques"
  "test_parallel_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
