# Empty compiler generated dependencies file for test_parallel_cliques.
# This may be replaced when dependencies are built.
