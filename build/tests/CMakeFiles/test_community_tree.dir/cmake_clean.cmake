file(REMOVE_RECURSE
  "CMakeFiles/test_community_tree.dir/test_community_tree.cpp.o"
  "CMakeFiles/test_community_tree.dir/test_community_tree.cpp.o.d"
  "test_community_tree"
  "test_community_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_community_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
