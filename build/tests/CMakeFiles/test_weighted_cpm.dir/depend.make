# Empty dependencies file for test_weighted_cpm.
# This may be replaced when dependencies are built.
