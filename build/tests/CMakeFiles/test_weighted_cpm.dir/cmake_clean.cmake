file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_cpm.dir/test_weighted_cpm.cpp.o"
  "CMakeFiles/test_weighted_cpm.dir/test_weighted_cpm.cpp.o.d"
  "test_weighted_cpm"
  "test_weighted_cpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
