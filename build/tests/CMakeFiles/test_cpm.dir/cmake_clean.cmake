file(REMOVE_RECURSE
  "CMakeFiles/test_cpm.dir/test_cpm.cpp.o"
  "CMakeFiles/test_cpm.dir/test_cpm.cpp.o.d"
  "test_cpm"
  "test_cpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
