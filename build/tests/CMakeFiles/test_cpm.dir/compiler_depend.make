# Empty compiler generated dependencies file for test_cpm.
# This may be replaced when dependencies are built.
