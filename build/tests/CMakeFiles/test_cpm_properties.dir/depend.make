# Empty dependencies file for test_cpm_properties.
# This may be replaced when dependencies are built.
