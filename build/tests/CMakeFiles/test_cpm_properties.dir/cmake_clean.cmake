file(REMOVE_RECURSE
  "CMakeFiles/test_cpm_properties.dir/test_cpm_properties.cpp.o"
  "CMakeFiles/test_cpm_properties.dir/test_cpm_properties.cpp.o.d"
  "test_cpm_properties"
  "test_cpm_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
