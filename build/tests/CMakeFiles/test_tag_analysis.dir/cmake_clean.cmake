file(REMOVE_RECURSE
  "CMakeFiles/test_tag_analysis.dir/test_tag_analysis.cpp.o"
  "CMakeFiles/test_tag_analysis.dir/test_tag_analysis.cpp.o.d"
  "test_tag_analysis"
  "test_tag_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
