# Empty compiler generated dependencies file for test_tag_analysis.
# This may be replaced when dependencies are built.
