file(REMOVE_RECURSE
  "CMakeFiles/test_set_ops.dir/test_set_ops.cpp.o"
  "CMakeFiles/test_set_ops.dir/test_set_ops.cpp.o.d"
  "test_set_ops"
  "test_set_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
