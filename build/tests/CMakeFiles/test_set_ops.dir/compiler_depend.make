# Empty compiler generated dependencies file for test_set_ops.
# This may be replaced when dependencies are built.
