file(REMOVE_RECURSE
  "CMakeFiles/test_percolation_threshold.dir/test_percolation_threshold.cpp.o"
  "CMakeFiles/test_percolation_threshold.dir/test_percolation_threshold.cpp.o.d"
  "test_percolation_threshold"
  "test_percolation_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_percolation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
