# Empty compiler generated dependencies file for test_dataset_roundtrip.
# This may be replaced when dependencies are built.
