file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_roundtrip.dir/test_dataset_roundtrip.cpp.o"
  "CMakeFiles/test_dataset_roundtrip.dir/test_dataset_roundtrip.cpp.o.d"
  "test_dataset_roundtrip"
  "test_dataset_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
