# Empty compiler generated dependencies file for test_degeneracy.
# This may be replaced when dependencies are built.
