file(REMOVE_RECURSE
  "CMakeFiles/test_degeneracy.dir/test_degeneracy.cpp.o"
  "CMakeFiles/test_degeneracy.dir/test_degeneracy.cpp.o.d"
  "test_degeneracy"
  "test_degeneracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degeneracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
