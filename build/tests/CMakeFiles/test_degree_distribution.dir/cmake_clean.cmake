file(REMOVE_RECURSE
  "CMakeFiles/test_degree_distribution.dir/test_degree_distribution.cpp.o"
  "CMakeFiles/test_degree_distribution.dir/test_degree_distribution.cpp.o.d"
  "test_degree_distribution"
  "test_degree_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
